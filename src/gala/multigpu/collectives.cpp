#include "gala/multigpu/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace gala::multigpu {

Communicator::Communicator(std::size_t num_ranks, CommCostModel cost)
    : num_ranks_(num_ranks), cost_(cost), barrier_(static_cast<std::ptrdiff_t>(num_ranks)) {
  GALA_CHECK(num_ranks >= 1, "communicator needs at least one rank");
  staging_.resize(num_ranks);
  scalar_buffer_.resize(num_ranks);
}

void Communicator::inject_gather_faults(std::size_t rank, Chunk& chunk) {
  auto& injector = resilience::FaultInjector::global();
  const int r = static_cast<int>(rank);
  if (injector.should_fire(resilience::FaultSite::CollectiveDrop, "all_gather_v", r)) {
    chunk.bytes.clear();
    chunk.status = ChunkStatus::Dropped;
    return;
  }
  if (injector.should_fire(resilience::FaultSite::CollectiveTimeout, "all_gather_v", r)) {
    chunk.status = ChunkStatus::TimedOut;
    return;
  }
  if (injector.should_fire(resilience::FaultSite::CollectiveCorrupt, "all_gather_v", r) &&
      !chunk.bytes.empty()) {
    // Flip one payload byte *after* the checksum was computed: exactly the
    // on-the-wire corruption the integrity check exists to catch.
    chunk.bytes[chunk.bytes.size() / 2] ^= std::byte{0x40};
  }
}

std::string Communicator::verify_round(const char* op) {
  std::ostringstream msg;
  for (std::size_t r = 0; r < num_ranks_; ++r) {
    const Chunk& c = staging_[r];
    if (c.status == ChunkStatus::Dropped) {
      msg << op << ": rank " << r << " dropped its contribution [collective-drop]";
      return msg.str();
    }
    if (c.status == ChunkStatus::TimedOut) {
      msg << op << ": rank " << r << " timed out [collective-timeout]";
      return msg.str();
    }
    if (fnv1a(c.bytes) != c.checksum) {
      msg << op << ": rank " << r << " payload failed checksum [collective-corrupt]";
      return msg.str();
    }
  }
  return {};
}

void Communicator::check_abort(const char* op) {
  if (!aborted()) return;
  std::string reason;
  {
    std::lock_guard lock(mutex_);
    reason = abort_reason_;
  }
  GALA_THROW(CollectiveFault, op << ": communicator aborted — " << reason);
}

void Communicator::abort(const std::string& reason) {
  {
    std::lock_guard lock(mutex_);
    if (abort_reason_.empty()) abort_reason_ = reason;
  }
  aborted_.store(true, std::memory_order_release);
  // Each aborting rank permanently leaves the barrier: its arrival completes
  // the current phase (releasing waiters) and shrinks the expected count for
  // every later phase, so the surviving ranks can always make progress to
  // their next check_abort.
  barrier_.arrive_and_drop();
}

void Communicator::all_reduce_sum(std::size_t rank, std::span<double> data, CommStats& stats) {
  GALA_CHECK(rank < num_ranks_,
             "all_reduce_sum: rank " << rank << " out of range [0, " << num_ranks_ << ")");
  check_abort("all_reduce_sum");
  {
    std::lock_guard lock(mutex_);
    if (reduce_buffer_.size() < data.size()) reduce_buffer_.assign(data.size(), 0.0);
  }
  barrier_.arrive_and_wait();
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < data.size(); ++i) reduce_buffer_[i] += data[i];
  }
  barrier_.arrive_and_wait();
  std::copy_n(reduce_buffer_.begin(), data.size(), data.begin());
  const std::size_t bytes = charged_reduce_bytes(data.size() * sizeof(double));
  stats.collectives += 1;
  stats.bytes += bytes;
  stats.modeled_us += cost_.microseconds(bytes);
  barrier_.arrive_and_wait();
  if (rank == 0) {
    std::lock_guard lock(mutex_);
    std::fill(reduce_buffer_.begin(), reduce_buffer_.end(), 0.0);
  }
  barrier_.arrive_and_wait();
}

double Communicator::all_reduce_min(std::size_t rank, double value, CommStats& stats) {
  GALA_CHECK(rank < num_ranks_,
             "all_reduce_min: rank " << rank << " out of range [0, " << num_ranks_ << ")");
  check_abort("all_reduce_min");
  scalar_buffer_[rank] = value;
  barrier_.arrive_and_wait();
  const double result = *std::min_element(scalar_buffer_.begin(), scalar_buffer_.end());
  // A scalar all-reduce(min) is modeled as an all-gather of one scalar per
  // rank, so it charges by the gather convention.
  const std::size_t bytes = charged_gather_bytes(num_ranks_ * sizeof(double));
  stats.collectives += 1;
  stats.bytes += bytes;
  stats.modeled_us += cost_.microseconds(bytes);
  barrier_.arrive_and_wait();
  return result;
}

}  // namespace gala::multigpu
