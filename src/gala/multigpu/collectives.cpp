#include "gala/multigpu/collectives.hpp"

#include <algorithm>
#include <cstring>

namespace gala::multigpu {

Communicator::Communicator(std::size_t num_ranks, CommCostModel cost)
    : num_ranks_(num_ranks), cost_(cost), barrier_(static_cast<std::ptrdiff_t>(num_ranks)) {
  GALA_CHECK(num_ranks >= 1, "communicator needs at least one rank");
  staging_.resize(num_ranks);
  scalar_buffer_.resize(num_ranks);
}

void Communicator::all_reduce_sum(std::size_t rank, std::span<double> data, CommStats& stats) {
  {
    std::lock_guard lock(mutex_);
    if (reduce_buffer_.size() < data.size()) reduce_buffer_.assign(data.size(), 0.0);
  }
  barrier_.arrive_and_wait();
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < data.size(); ++i) reduce_buffer_[i] += data[i];
  }
  barrier_.arrive_and_wait();
  std::copy_n(reduce_buffer_.begin(), data.size(), data.begin());
  const std::size_t bytes = data.size() * sizeof(double);
  stats.collectives += 1;
  stats.bytes += bytes;
  stats.modeled_us += cost_.microseconds(bytes);
  barrier_.arrive_and_wait();
  if (rank == 0) {
    std::lock_guard lock(mutex_);
    std::fill(reduce_buffer_.begin(), reduce_buffer_.end(), 0.0);
  }
  barrier_.arrive_and_wait();
}

double Communicator::all_reduce_min(std::size_t rank, double value, CommStats& stats) {
  scalar_buffer_[rank] = value;
  barrier_.arrive_and_wait();
  const double result = *std::min_element(scalar_buffer_.begin(), scalar_buffer_.end());
  stats.collectives += 1;
  stats.bytes += num_ranks_ * sizeof(double);
  stats.modeled_us += cost_.microseconds(num_ranks_ * sizeof(double));
  barrier_.arrive_and_wait();
  return result;
}

}  // namespace gala::multigpu
