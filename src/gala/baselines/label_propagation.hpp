// Label propagation (Raghavan et al. 2007) — the third community-detection
// cohort the paper's introduction surveys (majority-voting membership).
// Included as an extension baseline: it optimises no objective, so it pairs
// with the metrics module (NMI/ARI/modularity audits) to show where
// modularity-based methods win.
#pragma once

#include <cstdint>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::baselines {

struct LpaOptions {
  int max_iterations = 100;
  std::uint64_t seed = 1;
  /// Synchronous (BSP) updates instead of the classic asynchronous sweep.
  /// Synchronous LPA can oscillate on bipartite-ish structures; ties break
  /// toward the smaller label to damp that.
  bool synchronous = false;
};

struct LpaResult {
  std::vector<cid_t> labels;  ///< dense ids in [0, num_communities)
  vid_t num_communities = 0;
  int iterations = 0;
};

LpaResult label_propagation(const graph::Graph& g, const LpaOptions& opts = {});

}  // namespace gala::baselines
