#include "gala/baselines/baseline.hpp"

#include <algorithm>
#include <unordered_map>

#include "gala/baselines/generic_bsp.hpp"
#include "gala/common/timer.hpp"
#include "gala/core/blas_louvain.hpp"
#include "gala/core/modularity.hpp"

namespace gala::baselines {
namespace {

using core::Decision;
using core::DecideInput;
using core::move_score;
using gpusim::MemoryStats;

// ---------------------------------------------------------------------------
// Modeled-time calibration.
//
// Every GPU-style system is charged the same per-access latencies (the
// default CostModel); they differ in *traffic*, and in effective concurrency
// where the execution style demonstrably wastes lanes:
//  - kGpuLanes: full A100 occupancy (108 SMs x 2048 resident threads).
//  - kThreadPerVertexLanes: legacy Grappolo-GPU maps one scalar thread to a
//    whole vertex; divergence and uncoalesced access keep roughly 1/8 of the
//    machine busy (the usual penalty reported for scalar graph kernels).
//  - kCpuLanes: 2 x 28 cores x 2-way SMT x ~4-wide memory-level parallelism
//    ~= 448 concurrent accesses; CPU cache hierarchies also see lower
//    average latencies (global ~= 120 cycles vs HBM 400).
// DESIGN.md records this calibration; EXPERIMENTS.md compares the resulting
// ratios against the paper's.
// ---------------------------------------------------------------------------
constexpr double kGpuLanes = 108.0 * 2048.0;
constexpr double kThreadPerVertexLanes = kGpuLanes / 4.0;
constexpr double kCpuLanes = 1000.0;

gpusim::CostModel cpu_cost_model() {
  gpusim::CostModel m;
  m.global_cycles = 120;
  m.global_atomic_cycles = 240;
  m.shared_cycles = 12;   // ~L1
  m.shared_atomic_cycles = 24;
  return m;
}

/// Shared scoring tail: turn per-community weights into a Decision.
template <typename ForEach>
Decision score_communities(const DecideInput& in, vid_t v, ForEach&& for_each_community,
                           MemoryStats& stats) {
  const cid_t curr = in.comm[v];
  const wt_t dv = in.g->degree(v);
  Decision d;
  wt_t e_curr = 0;
  cid_t best = kInvalidCid;
  wt_t best_score = 0;
  for_each_community([&](cid_t c, wt_t weight) {
    stats.global_reads += 1;  // D_V(C)
    stats.register_ops += 1;
    const wt_t score = move_score(weight, in.comm_total[c], dv, in.two_m, c == curr);
    if (c == curr) e_curr = weight;
    if (best == kInvalidCid || score > best_score || (score == best_score && c < best)) {
      best = c;
      best_score = score;
    }
  });
  d.weight_to_curr = e_curr;
  stats.global_reads += 1;
  d.curr_score = move_score(e_curr, in.comm_total[curr], dv, in.two_m, true);
  if (best == kInvalidCid) {
    d.best = curr;
    d.best_score = d.curr_score;
  } else {
    d.best = best;
    d.best_score = best_score;
  }
  return d;
}

// --------------------------- cuGraph-like ----------------------------------
// Sort-based DecideAndMove: materialise (community, weight) key-value pairs,
// sort by community, segmented-reduce. The sort is charged as an LSD radix
// sort over 32-bit keys (4 passes, read+write per element per pass).
void cugraph_decide(const DecideInput& in, vid_t lo, vid_t hi, std::vector<Decision>& out,
                    MemoryStats& stats) {
  std::vector<std::pair<cid_t, wt_t>> pairs;
  for (vid_t v = lo; v < hi; ++v) {
    const auto nbrs = in.g->neighbors(v);
    const auto ws = in.g->weights(v);
    pairs.clear();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      stats.global_reads += 3;   // neighbour, weight, community
      stats.global_writes += 2;  // materialise the kv pair
      if (nbrs[i] == v) continue;
      pairs.emplace_back(in.comm[nbrs[i]], ws[i]);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    stats.global_reads += 8 * pairs.size();   // radix sort: 4 passes x read
    stats.global_writes += 8 * pairs.size();  //             4 passes x write
    out[v] = score_communities(
        in, v,
        [&](auto&& emit) {
          std::size_t i = 0;
          while (i < pairs.size()) {
            const cid_t c = pairs[i].first;
            wt_t sum = 0;
            while (i < pairs.size() && pairs[i].first == c) {
              stats.global_reads += 1;  // segmented reduce scan
              sum += pairs[i].second;
              ++i;
            }
            emit(c, sum);
          }
        },
        stats);
  }
}

// --------------------------- Gunrock-like ----------------------------------
// Edge-centric: the frontier advance scatters per-edge (dst-community,
// weight) contributions with global atomics into an accumulation slab, then
// a filter pass re-reads them per vertex. Twice the materialisation traffic
// of the hash kernel and everything through global memory.
void gunrock_decide(const DecideInput& in, vid_t lo, vid_t hi, std::vector<Decision>& out,
                    MemoryStats& stats) {
  std::unordered_map<cid_t, wt_t> acc;
  for (vid_t v = lo; v < hi; ++v) {
    const auto nbrs = in.g->neighbors(v);
    const auto ws = in.g->weights(v);
    acc.clear();
    stats.global_reads += 1;  // frontier load
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      stats.global_reads += 3;
      stats.global_writes += 2;   // edge kv materialisation
      stats.global_atomics += 1;  // scatter into the accumulation slab
      if (nbrs[i] == v) continue;
      acc[in.comm[nbrs[i]]] += ws[i];
    }
    stats.global_reads += 2 * acc.size();  // filter pass re-reads the slab
    out[v] = score_communities(
        in, v,
        [&](auto&& emit) {
          for (const auto& [c, w] : acc) emit(c, w);
        },
        stats);
  }
}

// --------------------------- hashtable-based -------------------------------
// Grappolo (GPU) and nido both evaluate through a global-memory hashtable;
// they differ in lane efficiency / batching overhead (configured by caller).
void global_hash_decide(const DecideInput& in, vid_t lo, vid_t hi, std::vector<Decision>& out,
                        MemoryStats& stats) {
  gpusim::SharedMemoryArena arena(1);  // effectively no shared memory
  core::HashScratch scratch;
  for (vid_t v = lo; v < hi; ++v) {
    if (in.g->out_degree(v) == 0) {
      out[v] = score_communities(in, v, [](auto&&) {}, stats);
      continue;
    }
    out[v] = core::hash_decide(in, v, core::HashTablePolicy::GlobalOnly, arena, scratch,
                               /*salt=*/0x9e3779b97f4a7c15ULL, stats);
  }
}

// --------------------------- Grappolo (CPU) --------------------------------
// Host-threaded BSP with per-vertex std::unordered_map accumulation: the
// natural CPU implementation, also measured in real wall-clock.
void cpu_decide(const DecideInput& in, vid_t lo, vid_t hi, std::vector<Decision>& out,
                MemoryStats& stats) {
  std::unordered_map<cid_t, wt_t> acc;
  for (vid_t v = lo; v < hi; ++v) {
    const auto nbrs = in.g->neighbors(v);
    const auto ws = in.g->weights(v);
    acc.clear();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      stats.global_reads += 3;
      stats.global_writes += 1;  // hash-map bucket update
      if (nbrs[i] == v) continue;
      acc[in.comm[nbrs[i]]] += ws[i];
    }
    out[v] = score_communities(
        in, v,
        [&](auto&& emit) {
          for (const auto& [c, w] : acc) emit(c, w);
        },
        stats);
  }
}

BaselineResult with_name(BaselineResult r, std::string name) {
  r.name = std::move(name);
  return r;
}

/// Wraps a phase-1 engine run into the baseline result shape.
BaselineResult from_engine(const graph::Graph& g, const core::BspConfig& cfg, std::string name,
                           double lane_efficiency = 1.0) {
  Timer timer;
  const auto r = core::bsp_phase1(g, cfg);
  BaselineResult out;
  out.name = std::move(name);
  out.community = r.community;
  out.modularity = r.modularity;
  out.iterations = static_cast<int>(r.iterations.size());
  out.wall_seconds = timer.seconds();
  out.traffic = r.total_traffic;
  out.modeled_ms = cfg.device.cost_model.milliseconds(
      r.total_traffic, cfg.device.model_parallel_lanes * lane_efficiency, cfg.device.model_clock_ghz);
  return out;
}

}  // namespace

BaselineResult run_cugraph_like(const graph::Graph& g, const BaselineOptions& opts) {
  detail::GenericBspSpec spec;
  spec.decide_range = cugraph_decide;
  spec.parallel_lanes = kGpuLanes;
  spec.cost_model = opts.device.cost_model;
  return with_name(detail::generic_bsp(g, opts, spec), "cuGraph");
}

BaselineResult run_gunrock_like(const graph::Graph& g, const BaselineOptions& opts) {
  detail::GenericBspSpec spec;
  spec.decide_range = gunrock_decide;
  spec.parallel_lanes = kGpuLanes;
  spec.cost_model = opts.device.cost_model;
  // Gunrock's Louvain pipeline re-materialises the full edge list every
  // iteration: segmented sort of m kv-pairs (~4 radix passes, read+write
  // each), reduce_by_key (read + compacted write), and the frontier
  // advance/filter kernels re-streaming edges and vertices.
  spec.extra_per_iteration = [](vid_t n, eid_t m, MemoryStats& s) {
    // Two full-edge-list segmented sorts of 64-bit (vertex, community) keys
    // per iteration (one for d_C(v), one for the community totals), 8 radix
    // passes each, read+write per element per pass.
    s.global_reads += 32 * m;
    s.global_writes += 32 * m;
    s.global_reads += 2 * m;   // reduce_by_key scan
    s.global_writes += m;      // reduce_by_key output
    s.global_reads += 2 * m + 2 * n;  // advance + filter re-streaming
  };
  return with_name(detail::generic_bsp(g, opts, spec), "Gunrock");
}

BaselineResult run_nido_like(const graph::Graph& g, const BaselineOptions& opts) {
  detail::GenericBspSpec spec;
  spec.decide_range = global_hash_decide;
  spec.parallel_lanes = kGpuLanes;
  spec.cost_model = opts.device.cost_model;
  // Batched processing: every batch reloads the community state, re-streams
  // boundary edges, and flushes its partial results before the next batch is
  // admitted.
  const int batches = std::max(1, opts.nido_batches);
  spec.extra_per_iteration = [batches](vid_t n, eid_t m, MemoryStats& s) {
    s.global_reads += static_cast<std::uint64_t>(batches) * n;  // state reloads
    // Each batch re-streams the full adjacency to find its boundary edges
    // and stages the cut-edge contributions for later batches.
    s.global_reads += static_cast<std::uint64_t>(batches) * m;
    s.global_writes += static_cast<std::uint64_t>(batches) * n + m;  // partial flush
  };
  return with_name(detail::generic_bsp(g, opts, spec), "nido");
}

BaselineResult run_grappolo_gpu(const graph::Graph& g, const BaselineOptions& opts) {
  // Legacy code path: one scalar thread per vertex, global-memory hashtable.
  detail::GenericBspSpec spec;
  spec.decide_range = global_hash_decide;
  spec.parallel_lanes = kThreadPerVertexLanes;
  spec.cost_model = opts.device.cost_model;
  return with_name(detail::generic_bsp(g, opts, spec), "Grappolo (GPU)");
}

BaselineResult run_grappolo_gpu_star(const graph::Graph& g, const BaselineOptions& opts) {
  // Modernised port: block-per-vertex, unified shared/global hashtable, but
  // no pruning and naive weight recompute.
  core::BspConfig cfg;
  cfg.pruning = core::PruningStrategy::None;
  cfg.kernel = core::KernelMode::HashOnly;
  cfg.hashtable = core::HashTablePolicy::Unified;
  cfg.weight_update = core::WeightUpdateMode::Recompute;
  cfg.theta = opts.theta;
  cfg.max_iterations = opts.max_iterations;
  cfg.parallel = opts.parallel;
  cfg.seed = opts.seed;
  cfg.device = opts.device;
  return from_engine(g, cfg, "Grappolo (GPU)*");
}

BaselineResult run_grappolo_cpu(const graph::Graph& g, const BaselineOptions& opts) {
  detail::GenericBspSpec spec;
  spec.decide_range = cpu_decide;
  spec.parallel_lanes = kCpuLanes;
  spec.cost_model = cpu_cost_model();
  return with_name(detail::generic_bsp(g, opts, spec), "Grappolo (CPU)");
}

BaselineResult run_gala(const graph::Graph& g, const BaselineOptions& opts) {
  core::BspConfig cfg;
  cfg.theta = opts.theta;
  cfg.max_iterations = opts.max_iterations;
  cfg.parallel = opts.parallel;
  cfg.seed = opts.seed;
  cfg.device = opts.device;
  return from_engine(g, cfg, "GALA");
}

BaselineResult run_gala_blas(const graph::Graph& g, const BaselineOptions& opts) {
  core::BspConfig cfg;
  cfg.theta = opts.theta;
  cfg.max_iterations = opts.max_iterations;
  cfg.parallel = opts.parallel;
  cfg.seed = opts.seed;
  cfg.device = opts.device;
  Timer timer;
  const auto r = core::blas_phase1(g, cfg);
  BaselineResult out;
  out.name = "GALA (blas)";
  out.community = r.community;
  out.modularity = r.modularity;
  out.iterations = static_cast<int>(r.iterations.size());
  out.wall_seconds = timer.seconds();
  out.traffic = r.total_traffic;
  out.modeled_ms = cfg.device.cost_model.milliseconds(
      r.total_traffic, cfg.device.model_parallel_lanes, cfg.device.model_clock_ghz);
  return out;
}

std::vector<BaselineResult> run_all_systems(const graph::Graph& g, const BaselineOptions& opts) {
  std::vector<BaselineResult> results;
  results.push_back(run_cugraph_like(g, opts));
  results.push_back(run_gunrock_like(g, opts));
  results.push_back(run_nido_like(g, opts));
  results.push_back(run_grappolo_gpu(g, opts));
  results.push_back(run_grappolo_gpu_star(g, opts));
  results.push_back(run_grappolo_cpu(g, opts));
  results.push_back(run_gala_blas(g, opts));
  results.push_back(run_gala(g, opts));
  return results;
}

}  // namespace gala::baselines
