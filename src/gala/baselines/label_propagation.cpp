#include "gala/baselines/label_propagation.hpp"

#include <numeric>
#include <unordered_map>

#include "gala/common/prng.hpp"
#include "gala/core/modularity.hpp"

namespace gala::baselines {
namespace {

/// Weighted-majority label among v's neighbours; ties break toward the
/// smaller label (deterministic). Returns the current label when v has no
/// neighbours.
cid_t majority_label(const graph::Graph& g, vid_t v, std::span<const cid_t> labels,
                     std::unordered_map<cid_t, wt_t>& scratch) {
  scratch.clear();
  auto nbrs = g.neighbors(v);
  auto ws = g.weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] != v) scratch[labels[nbrs[i]]] += ws[i];
  }
  if (scratch.empty()) return labels[v];
  cid_t best = labels[v];
  wt_t best_w = -1;
  for (const auto& [label, w] : scratch) {
    if (w > best_w || (w == best_w && label < best)) {
      best = label;
      best_w = w;
    }
  }
  return best;
}

}  // namespace

LpaResult label_propagation(const graph::Graph& g, const LpaOptions& opts) {
  const vid_t n = g.num_vertices();
  LpaResult result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), 0);
  if (n == 0) return result;

  Xoshiro256 rng(opts.seed);
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::unordered_map<cid_t, wt_t> scratch;
  std::vector<cid_t> next;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ++result.iterations;
    vid_t changed = 0;
    if (opts.synchronous) {
      next.assign(result.labels.begin(), result.labels.end());
      for (vid_t v = 0; v < n; ++v) {
        const cid_t label = majority_label(g, v, result.labels, scratch);
        if (label != result.labels[v]) {
          next[v] = label;
          ++changed;
        }
      }
      result.labels.swap(next);
    } else {
      // Classic asynchronous sweep in a fresh random order each iteration.
      for (vid_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.next_below(i)]);
      for (const vid_t v : order) {
        const cid_t label = majority_label(g, v, result.labels, scratch);
        if (label != result.labels[v]) {
          result.labels[v] = label;
          ++changed;
        }
      }
    }
    if (changed == 0) break;
  }

  result.num_communities = core::renumber_communities(result.labels);
  return result;
}

}  // namespace gala::baselines
