// Internal: a generic BSP phase-1 loop for the baseline systems.
//
// The baselines differ only in how DecideAndMove is executed; the iteration
// skeleton (no pruning, naive per-iteration community-weight recompute,
// Grappolo convergence rule) is identical, so it lives here. Modularity is
// tracked with the independent audit (core::modularity), guaranteeing every
// baseline is scored by the same yardstick.
#pragma once

#include <functional>
#include <mutex>

#include "gala/baselines/baseline.hpp"
#include "gala/common/thread_pool.hpp"
#include "gala/common/timer.hpp"
#include "gala/core/kernels.hpp"
#include "gala/core/modularity.hpp"

namespace gala::baselines::detail {

/// decide_range(input, lo, hi, decisions, stats): evaluate vertices [lo, hi).
using DecideRange = std::function<void(const core::DecideInput&, vid_t, vid_t,
                                       std::vector<core::Decision>&, gpusim::MemoryStats&)>;

/// Extra traffic a system pays per iteration beyond its decide pass
/// (e.g. nido's batch reloads); called with (num_vertices, num_adjacency).
using ExtraTraffic = std::function<void(vid_t, eid_t, gpusim::MemoryStats&)>;

struct GenericBspSpec {
  DecideRange decide_range;
  ExtraTraffic extra_per_iteration;  // may be null
  /// Effective concurrent lanes for the modeled-time conversion (see
  /// baseline.cpp for the per-system calibration).
  double parallel_lanes = 108.0 * 2048.0;
  gpusim::CostModel cost_model{};
};

inline BaselineResult generic_bsp(const graph::Graph& g, const BaselineOptions& opts,
                                  const GenericBspSpec& spec) {
  GALA_CHECK(g.total_weight() > 0, "graph has no edge weight");
  const vid_t n = g.num_vertices();
  BaselineResult result;
  Timer timer;

  std::vector<cid_t> comm(n), next(n);
  std::vector<wt_t> comm_total(n);
  std::vector<vid_t> comm_size(n, 1);
  for (vid_t v = 0; v < n; ++v) {
    comm[v] = v;
    comm_total[v] = g.degree(v);
  }
  std::vector<core::Decision> decisions(n);

  wt_t q = core::modularity(g, comm);
  gpusim::MemoryStats traffic;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    const core::DecideInput input{&g, comm, comm_total, g.two_m()};
    if (opts.parallel) {
      std::mutex merge;
      ThreadPool::global().parallel_for_chunked(
          0, n,
          [&](std::size_t lo, std::size_t hi) {
            gpusim::MemoryStats local;
            spec.decide_range(input, static_cast<vid_t>(lo), static_cast<vid_t>(hi), decisions,
                              local);
            std::lock_guard lock(merge);
            traffic += local;
          },
          256);
    } else {
      spec.decide_range(input, 0, n, decisions, traffic);
    }

    vid_t moved = 0;
    for (vid_t v = 0; v < n; ++v) {
      next[v] = core::apply_move_guard(decisions[v], comm[v], comm_size);
      if (next[v] != comm[v]) ++moved;
    }
    for (vid_t v = 0; v < n; ++v) {
      if (next[v] == comm[v]) continue;
      comm_total[comm[v]] -= g.degree(v);
      comm_total[next[v]] += g.degree(v);
      --comm_size[comm[v]];
      ++comm_size[next[v]];
      traffic.global_atomics += 4;
    }
    comm.swap(next);

    // Naive community-weight recompute + community totals (Alg. 1 lines
    // 6-11) — every baseline pays this each iteration.
    traffic.global_reads += 2 * g.num_adjacency() + n;
    if (spec.extra_per_iteration) spec.extra_per_iteration(n, g.num_adjacency(), traffic);

    const wt_t next_q = core::modularity(g, comm);
    const wt_t dq = next_q - q;
    q = next_q;
    ++result.iterations;
    if (moved == 0 || dq < opts.theta) break;
  }

  result.community = std::move(comm);
  result.modularity = q;
  result.wall_seconds = timer.seconds();
  result.traffic = traffic;
  result.modeled_ms = spec.cost_model.milliseconds(traffic, spec.parallel_lanes);
  return result;
}

}  // namespace gala::baselines::detail
