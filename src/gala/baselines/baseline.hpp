// Baseline Louvain implementations (the comparators of Fig. 5).
//
// Each baseline reproduces the *algorithmic strategy* the paper attributes
// to that system, running on the same simulator substrate so traffic and
// modeled time are directly comparable (DESIGN.md §1):
//
//   cuGraph-like   : sort-based DecideAndMove — gather (community, weight)
//                    pairs per vertex, sort, segmented-reduce; the "complex
//                    state transformation" path [1, 15].
//   Gunrock-like   : frontier/edge-centric — per-edge atomic scatter into a
//                    global-memory accumulation table plus frontier
//                    maintenance traffic [42, 59].
//   nido-like      : batched vertex processing with per-batch state reloads
//                    (the multi-GPU batching design run on one device) [16].
//   Grappolo (GPU) : thread-per-vertex hashtable in global memory, no
//                    pruning, naive weight recompute [39].
//   Grappolo (GPU)*: the modernised port — block-per-vertex with a unified
//                    shared/global hashtable, still unpruned [39 + fixes].
//   Grappolo (CPU) : host-threaded BSP with per-vertex hash maps [36],
//                    measured in wall-clock on the actual CPU.
//
// All baselines share GALA's decide semantics and convergence rule, so final
// modularity is identical across systems (§5.1: "the modularity values are
// identical") — asserted by tests.
#pragma once

#include <string>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/graph/csr.hpp"

namespace gala::baselines {

struct BaselineOptions {
  double theta = 1e-6;
  int max_iterations = 1000;
  bool parallel = true;
  std::uint64_t seed = 7;
  gpusim::DeviceConfig device{};
  /// nido-like: number of vertex batches per iteration.
  int nido_batches = 8;
};

struct BaselineResult {
  std::string name;
  std::vector<cid_t> community;
  wt_t modularity = 0;
  int iterations = 0;
  double wall_seconds = 0;
  double modeled_ms = 0;
  gpusim::MemoryStats traffic;
};

BaselineResult run_cugraph_like(const graph::Graph& g, const BaselineOptions& opts = {});
BaselineResult run_gunrock_like(const graph::Graph& g, const BaselineOptions& opts = {});
BaselineResult run_nido_like(const graph::Graph& g, const BaselineOptions& opts = {});
BaselineResult run_grappolo_gpu(const graph::Graph& g, const BaselineOptions& opts = {});
BaselineResult run_grappolo_gpu_star(const graph::Graph& g, const BaselineOptions& opts = {});
BaselineResult run_grappolo_cpu(const graph::Graph& g, const BaselineOptions& opts = {});

/// GALA itself under the same harness (phase 1 of round 1), for Fig. 5 rows.
BaselineResult run_gala(const graph::Graph& g, const BaselineOptions& opts = {});

/// GALA's linear-algebra engine (blas backend) under the same harness — the
/// masked-SpMV formulation of DecideAndMove. Produces the same partition as
/// run_gala (the engines are trajectory-identical); only traffic and modeled
/// time differ.
BaselineResult run_gala_blas(const graph::Graph& g, const BaselineOptions& opts = {});

/// All systems in the paper's Fig. 5 order (GALA last).
std::vector<BaselineResult> run_all_systems(const graph::Graph& g,
                                            const BaselineOptions& opts = {});

}  // namespace gala::baselines
