// Masked SpMV: the neighbour-community weight gather as a linear-algebra
// kernel (GraphBLAST's formulation of the Louvain scoring sweep).
//
// For every unmasked row v the kernel accumulates
//     w(v, c) = sum of A[v][u] over u != v with comm[u] == c
// into a block-local sparse accumulator (SPA) and hands the touched columns
// to the row visitor — which is where the engine scores candidates. The SPA
// sums in adjacency encounter order, matching the BSP hash kernel's upsert
// order bit-for-bit (see blas.hpp, determinism contract).
//
// Direction-optimization (Gunrock): Pull streams all rows and tests the
// mask; Push takes a pre-compacted frontier and touches only active rows.
// Both evaluate exactly the rows the mask selects — the visitor sees the
// same rows with the same sums — so direction is a pure cost knob, chosen
// per launch from frontier density (choose_direction).
//
// SPA scratch is checked out of the launching block's workspace per launch
// (tags "blas.spa_*"). The mark array keeps an all-zeros-on-release
// invariant: each row clears exactly the entries it touched, so a same-tag
// recycled slab skips re-initialisation (Lease::recycled_same_tag) and the
// steady state allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "gala/blas/blas.hpp"
#include "gala/common/types.hpp"
#include "gala/gpusim/device.hpp"
#include "gala/graph/csr.hpp"

namespace gala::blas {

/// Per-row result hook: row id, the touched columns (community ids, in
/// first-touch order), the dense value array indexed by column, and the
/// block's traffic counter to charge scoring loads to. Values are valid
/// only for the touched columns and only during the call.
using RowVisitor =
    std::function<void(vid_t, std::span<const cid_t>, const wt_t*, gpusim::MemoryStats&)>;

struct GatherStats {
  Direction direction = Direction::Pull;
  std::uint64_t rows = 0;  ///< rows evaluated (== active rows)
  gpusim::LaunchStats launch;
};

/// One gather launch over `g` with columns relabelled by `comm` (size V;
/// values bound the SPA, so they must be < V). Pull mode reads `mask`
/// (size V, nonzero = evaluate); Push mode reads `frontier` (active row
/// ids, any order) and ignores `mask`. `parallel` selects pooled vs
/// sequential block execution on `device`, which must be workspace-bound.
GatherStats masked_gather(const graph::Graph& g, std::span<const cid_t> comm,
                          std::span<const std::uint8_t> mask, std::span<const vid_t> frontier,
                          Direction dir, const gpusim::Device& device, bool parallel,
                          const RowVisitor& visit, std::string_view kernel_name);

}  // namespace gala::blas
