// CSR SpGEMM specialised to the Louvain contraction S^T·A·S (paper §2.2).
//
// S is the V x C membership indicator of `fine_to_coarse`, so row c of the
// product gathers every adjacency entry of c's member vertices with columns
// relabelled through the community map. The canonical enumeration order —
// members ascending, adjacency order within a member — fixes the
// floating-point sum order, making the output bit-identical across the hash
// and sorted-merge accumulators (both sum each output entry's contributions
// in that encounter order) and identical to the legacy edge-list
// builder path for exact-weight graphs.
//
// Counting conventions match core/aggregation.cpp's historical builder loop:
// off-diagonal entries contribute from both endpoints' rows (each
// undirected coarse edge is assembled once per direction), while diagonal
// contributions (comm[u] == comm[v]) are taken only from the u >= v half so
// intra-community edges count once and fine self-loops once — the coarse
// self-loop stored equals D_intra + loops, and degree accounting doubles it.
//
// Accumulators (governor rung 2 forces Sorted — the hash table's
// power-of-two slack is the footprint being shed; see governor.hpp):
//   Hash   — open addressing, power-of-two capacity, linear probing;
//            touched columns sorted per row to emit ordered CSR.
//   Sorted — materialise (column, value) pairs, stable-sort by column
//            (preserving encounter order within a column), merge runs.
#pragma once

#include <cstdint>
#include <span>

#include "gala/blas/blas.hpp"
#include "gala/common/types.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/gpusim/device.hpp"
#include "gala/graph/csr.hpp"

namespace gala::blas {

struct SpgemmStats {
  Accumulator accumulator = Accumulator::Hash;
  /// True when the governor's ladder (rung 2+) overrode a Hash request.
  bool governor_forced = false;
  std::uint64_t rows = 0;         ///< coarse rows (communities)
  std::uint64_t flops = 0;        ///< multiply-accumulate candidates visited
  std::uint64_t nnz = 0;          ///< output adjacency entries
  std::uint64_t max_row_nnz = 0;
  std::uint64_t hash_probes = 0;  ///< linear-probe steps (hash accumulator)
  /// Mean filled/capacity of the hash table over rows (0 under Sorted).
  double mean_occupancy = 0;
  gpusim::MemoryStats traffic;
};

/// Contracts `fine` by the dense community map `fine_to_coarse` (values in
/// [0, num_coarse)) and returns the coarse CSR graph. Scratch is checked out
/// of `ws` (tags "blas.spgemm.*") when given, heap-allocated otherwise —
/// results are identical. `stats`, when given, receives the kernel's
/// counters; traffic is also charged there (the contraction runs once per
/// level, outside any engine launch).
graph::Graph contract_csr(const graph::Graph& fine, std::span<const cid_t> fine_to_coarse,
                          vid_t num_coarse, exec::Workspace* ws, const Tuning& tuning = {},
                          SpgemmStats* stats = nullptr);

}  // namespace gala::blas
