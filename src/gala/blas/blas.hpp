// gala::blas — GraphBLAS-style linear-algebra primitives (ROADMAP's second
// engine; GraphBLAST / Gunrock lineage, PAPERS.md).
//
// Louvain decomposes into two sparse linear-algebra kernels:
//   - the per-vertex neighbour-community weight gather d_C(v) is a masked
//     SpMV row sweep over A with columns relabelled by the community map
//     (spmv.hpp), direction-optimized push/pull by frontier density,
//   - phase-2 contraction is the triple product S^T·A·S where S is the
//     V x C membership indicator (spgemm.hpp), with hash- or sorted-merge
//     row accumulators.
//
// This library is primitives-only: it knows graphs, workspaces, the device
// model, and the governor — never the engine. The blas Louvain engine that
// composes these into phase 1 lives in core/blas_louvain.*, behind the
// LouvainBackend seam (core/backend.hpp).
//
// Determinism contract: every accumulator sums a row's contributions in
// adjacency encounter order, the same order the BSP hash kernel upserts.
// Sums are therefore bit-identical across accumulator variants, push/pull
// directions, and against the hash-kernel engine — which is what lets the
// governor swap accumulators mid-run and the backend-parity suite assert
// equality rather than tolerance.
#pragma once

#include <cstdint>

namespace gala::blas {

/// SpGEMM row-accumulator variant. Hash: open-addressing (power-of-two
/// table, linear probing) — fastest, but the table slack is real footprint.
/// Sorted: materialise (column, value) pairs and stable-sort-merge —
/// smaller, more traffic. Output is bit-identical (see header comment), so
/// the governor may force Sorted under memory pressure without perturbing
/// the partition.
enum class Accumulator : std::uint8_t { Hash, Sorted };
const char* to_string(Accumulator a);

/// Masked-SpMV sweep direction (Gunrock's direction-optimization). Pull
/// iterates all rows testing the mask; Push compacts the frontier first and
/// iterates only it. The evaluated row set is identical either way — the
/// choice trades mask-scan traffic against frontier materialisation.
enum class Direction : std::uint8_t { Pull, Push };
const char* to_string(Direction d);

/// Knobs the blas backend exposes through GalaConfig::blas.
struct Tuning {
  Accumulator accumulator = Accumulator::Hash;
  /// Frontier density (active/V) at or above which the gather pulls;
  /// below it, the frontier is compacted and pushed.
  double pull_threshold = 0.10;
};

/// Direction selection by frontier density (deterministic, pure).
Direction choose_direction(std::uint64_t active_rows, std::uint64_t total_rows,
                           double pull_threshold);

}  // namespace gala::blas
