#include "gala/blas/blas.hpp"

namespace gala::blas {

const char* to_string(Accumulator a) {
  switch (a) {
    case Accumulator::Hash:
      return "hash";
    case Accumulator::Sorted:
      return "sorted";
  }
  return "?";
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::Pull:
      return "pull";
    case Direction::Push:
      return "push";
  }
  return "?";
}

Direction choose_direction(std::uint64_t active_rows, std::uint64_t total_rows,
                           double pull_threshold) {
  if (total_rows == 0) return Direction::Pull;
  const double density = static_cast<double>(active_rows) / static_cast<double>(total_rows);
  return density >= pull_threshold ? Direction::Pull : Direction::Push;
}

}  // namespace gala::blas
