#include "gala/blas/spmv.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <optional>

#include "gala/common/error.hpp"
#include "gala/exec/workspace.hpp"

namespace gala::blas {
namespace {

/// Rows per simulated block. Pull blocks cover contiguous row ranges; push
/// blocks cover contiguous frontier slices.
constexpr std::size_t kRowsPerBlock = 128;

/// SPA mark slabs are checked out at their full power-of-two size class so
/// the all-zeros invariant covers the whole slab: a later, larger checkout
/// that lands in the same class can still trust recycled_same_tag.
std::size_t mark_capacity(std::size_t n) { return std::bit_ceil(std::max<std::size_t>(n, 64)); }

/// Block-local SPA, checked out of the launch workspace (tag-affine
/// recycling keeps the steady state allocation-free). The mark slab keeps an
/// all-zeros-on-release invariant — every row clears exactly what it
/// touched — so a same-tag recycled slab skips re-initialisation.
struct Spa {
  exec::Workspace::Lease<wt_t> vals;
  exec::Workspace::Lease<std::uint8_t> marks;
  exec::Workspace::Lease<cid_t> touched;

  Spa(exec::Workspace& ws, std::size_t n, std::size_t touched_cap)
      : vals(ws.take<wt_t>(n, "blas.spa_vals")),
        marks(ws.take<std::uint8_t>(mark_capacity(n), "blas.spa_marks")),
        touched(ws.take<cid_t>(touched_cap, "blas.spa_touched")) {
    if (!marks.recycled_same_tag()) std::memset(marks.data(), 0, marks.span().size());
  }
};

}  // namespace

GatherStats masked_gather(const graph::Graph& g, std::span<const cid_t> comm,
                          std::span<const std::uint8_t> mask, std::span<const vid_t> frontier,
                          Direction dir, const gpusim::Device& device, bool parallel,
                          const RowVisitor& visit, std::string_view kernel_name) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(comm.size() == n, "masked_gather: community map size mismatch");
  if (dir == Direction::Pull) {
    GALA_CHECK(mask.size() == n, "masked_gather: mask size mismatch");
  }

  GatherStats out;
  out.direction = dir;

  const std::size_t touched_cap = std::max<std::size_t>(g.max_out_degree(), 1);

  // One row through the SPA: accumulate in adjacency encounter order (the
  // BSP hash kernel's upsert order — bit-identical sums), visit, then
  // restore the marks invariant by clearing only touched slots.
  const auto gather_row = [&](vid_t v, Spa& spa, gpusim::MemoryStats& stats) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    wt_t* vals = spa.vals.data();
    std::uint8_t* marks = spa.marks.data();
    cid_t* touched = spa.touched.data();
    std::size_t tc = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      stats.global_reads += 3;  // neighbour id, weight, comm[u]
      if (u == v) continue;     // self-loops cancel out of every comparison
      const cid_t c = comm[u];
      if (!marks[c]) {
        marks[c] = 1;
        vals[c] = ws[i];
        touched[tc++] = c;
      } else {
        vals[c] += ws[i];
      }
      stats.global_atomics += 1;  // SPA accumulate
    }
    visit(v, std::span<const cid_t>(touched, tc), vals, stats);
    for (std::size_t j = 0; j < tc; ++j) marks[touched[j]] = 0;
    stats.global_writes += tc;  // SPA reset of the touched slots
  };

  const auto launch = [&](std::size_t count, const auto& body) {
    const std::size_t blocks = (count + kRowsPerBlock - 1) / kRowsPerBlock;
    if (blocks == 0) return gpusim::LaunchStats{};
    return parallel ? device.launch(blocks, body, kernel_name)
                    : device.launch_sequential(blocks, body, kernel_name);
  };

  if (dir == Direction::Pull) {
    // Pull: stream every row, test the mask inline — no frontier is ever
    // materialised. The SPA checkout is deferred until the block's range
    // proves to hold an active row, so all-pruned ranges cost only the scan.
    std::atomic<std::uint64_t> rows{0};
    out.launch = launch(n, [&](gpusim::BlockContext& ctx) {
      GALA_ASSERT(ctx.workspace != nullptr);
      const std::size_t lo = ctx.block_id * kRowsPerBlock;
      const std::size_t hi = std::min<std::size_t>(n, lo + kRowsPerBlock);
      std::optional<Spa> spa;
      std::uint64_t evaluated = 0;
      for (std::size_t v = lo; v < hi; ++v) {
        ctx.stats->global_reads += 1;  // mask load
        if (!mask[v]) continue;
        if (!spa) spa.emplace(*ctx.workspace, n, touched_cap);
        gather_row(static_cast<vid_t>(v), *spa, *ctx.stats);
        ++evaluated;
      }
      rows.fetch_add(evaluated, std::memory_order_relaxed);
    });
    out.rows = rows.load(std::memory_order_relaxed);
  } else {
    // Push: the frontier is already compacted; blocks stride over it.
    out.rows = frontier.size();
    out.launch = launch(frontier.size(), [&](gpusim::BlockContext& ctx) {
      GALA_ASSERT(ctx.workspace != nullptr);
      const std::size_t lo = ctx.block_id * kRowsPerBlock;
      const std::size_t hi = std::min(frontier.size(), lo + kRowsPerBlock);
      if (lo >= hi) return;
      Spa spa(*ctx.workspace, n, touched_cap);
      for (std::size_t i = lo; i < hi; ++i) {
        ctx.stats->global_reads += 1;  // frontier entry load
        gather_row(frontier[i], spa, *ctx.stats);
      }
    });
  }
  return out;
}

}  // namespace gala::blas
