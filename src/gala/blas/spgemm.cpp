#include "gala/blas/spgemm.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <utility>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/governor/governor.hpp"
#include "gala/gpusim/device.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::blas {
namespace {

/// Pooled-or-heap scratch: a lease when a workspace is given (tag-affine
/// recycling across levels), a plain vector otherwise (the incremental
/// repair path contracts without a workspace). Results are identical.
template <typename T>
struct Scratch {
  exec::Workspace::Lease<T> lease;
  std::vector<T> heap;
  std::span<T> span;

  Scratch(exec::Workspace* ws, std::size_t count, std::string_view tag) {
    if (ws != nullptr) {
      lease = ws->take<T>(count, tag);
      span = lease.span();
    } else {
      heap.resize(count);
      span = heap;
    }
  }
  T* data() { return span.data(); }
  T& operator[](std::size_t i) { return span[i]; }
};

std::size_t hash_slot(cid_t c, std::size_t mask) {
  return static_cast<std::size_t>((static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ULL) >> 32) &
         mask;
}

}  // namespace

graph::Graph contract_csr(const graph::Graph& fine, std::span<const cid_t> fine_to_coarse,
                          vid_t num_coarse, exec::Workspace* ws, const Tuning& tuning,
                          SpgemmStats* stats) {
  const vid_t n = fine.num_vertices();
  GALA_CHECK(fine_to_coarse.size() == n, "contract_csr: community map size mismatch");

  SpgemmStats local;
  SpgemmStats& st = stats != nullptr ? *stats : local;
  st = SpgemmStats{};
  st.accumulator = tuning.accumulator;
  if (governor::Governor::global().force_sorted_accumulator() &&
      st.accumulator == Accumulator::Hash) {
    st.accumulator = Accumulator::Sorted;
    st.governor_forced = true;
  }
  st.rows = num_coarse;

  telemetry::ScopedSpan span(telemetry::Tracer::global(), "spgemm", "blas");

  if (num_coarse == 0) {
    return graph::GraphBuilder::from_sorted_csr(0, std::vector<eid_t>{0}, {}, {});
  }

  // S^T as a CSC of the membership map, by counting sort: members of each
  // coarse row, ascending fine id — the canonical enumeration order that
  // fixes every output entry's summation order.
  Scratch<eid_t> starts(ws, static_cast<std::size_t>(num_coarse) + 1, "blas.spgemm.starts");
  Scratch<vid_t> members(ws, n, "blas.spgemm.members");
  std::fill(starts.span.begin(), starts.span.end(), 0);
  for (vid_t v = 0; v < n; ++v) {
    GALA_CHECK(fine_to_coarse[v] < num_coarse, "contract_csr: community id out of range");
    ++starts[fine_to_coarse[v] + 1];
  }
  for (vid_t c = 0; c < num_coarse; ++c) starts[c + 1] += starts[c];
  {
    Scratch<eid_t> cursor(ws, num_coarse, "blas.spgemm.cursor");
    std::copy(starts.span.begin(), starts.span.end() - 1, cursor.span.begin());
    for (vid_t v = 0; v < n; ++v) members[cursor[fine_to_coarse[v]]++] = v;
  }
  st.traffic.global_reads += n;   // community-map scan
  st.traffic.global_writes += n;  // member scatter

  // Upper bound on a row's candidate count = Σ out_degree over members;
  // sizes the accumulator scratch once for the whole kernel.
  std::size_t max_work = 1;
  for (vid_t c = 0; c < num_coarse; ++c) {
    std::size_t work = 0;
    for (eid_t i = starts[c]; i < starts[c + 1]; ++i) {
      work += fine.out_degree(members[i]);
    }
    max_work = std::max(max_work, work);
  }

  std::vector<eid_t> offsets(static_cast<std::size_t>(num_coarse) + 1, 0);
  std::vector<vid_t> neighbors;
  std::vector<wt_t> weights;
  neighbors.reserve(std::min<std::size_t>(fine.num_adjacency(),
                                          static_cast<std::size_t>(num_coarse) * 4));
  weights.reserve(neighbors.capacity());

  using Pair = std::pair<cid_t, wt_t>;
  const bool hashed = st.accumulator == Accumulator::Hash;
  const std::size_t cap = hashed ? std::bit_ceil(std::max<std::size_t>(2 * max_work, 16)) : 0;
  const std::size_t mask = cap != 0 ? cap - 1 : 0;

  // Hash accumulator scratch (keys reset per row via the touched list) or
  // sorted-merge pair buffer — only one variant's slabs are checked out.
  std::optional<Scratch<cid_t>> keys;
  std::optional<Scratch<wt_t>> vals;
  std::optional<Scratch<std::size_t>> touched;
  std::optional<Scratch<Pair>> pairs;
  std::vector<Pair> row_out;  // (column, value), sorted, emitted per row
  if (hashed) {
    keys.emplace(ws, cap, "blas.spgemm.keys");
    vals.emplace(ws, cap, "blas.spgemm.vals");
    touched.emplace(ws, max_work, "blas.spgemm.touched");
    std::fill(keys->span.begin(), keys->span.end(), kInvalidCid);
  } else {
    pairs.emplace(ws, max_work, "blas.spgemm.pairs");
  }
  row_out.reserve(max_work);

  double occupancy_sum = 0;
  for (vid_t c = 0; c < num_coarse; ++c) {
    row_out.clear();
    std::size_t count = 0;  // candidates materialised (sorted) / slots touched (hash)
    const auto emit_candidate = [&](cid_t col, wt_t w) {
      ++st.flops;
      st.traffic.global_atomics += 1;  // accumulate
      if (hashed) {
        std::size_t slot = hash_slot(col, mask);
        st.traffic.global_reads += 1;  // first probe
        while ((*keys)[slot] != kInvalidCid && (*keys)[slot] != col) {
          slot = (slot + 1) & mask;
          ++st.hash_probes;
          st.traffic.global_reads += 1;
        }
        if ((*keys)[slot] == kInvalidCid) {
          (*keys)[slot] = col;
          (*vals)[slot] = w;
          (*touched)[count++] = slot;
        } else {
          (*vals)[slot] += w;
        }
      } else {
        (*pairs)[count++] = {col, w};
        st.traffic.global_writes += 2;  // pair materialisation
      }
    };

    // Row c of S^T·A·S: every adjacency entry of every member, columns
    // through the community map. Diagonal contributions only from the
    // u >= v half (see header: intra edges once, self-loops once).
    for (eid_t i = starts[c]; i < starts[c + 1]; ++i) {
      const vid_t v = members[i];
      const auto nbrs = fine.neighbors(v);
      const auto wts = fine.weights(v);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const vid_t u = nbrs[k];
        st.traffic.global_reads += 3;  // neighbour, weight, comm[u]
        const cid_t cu = fine_to_coarse[u];
        if (cu == c && u < v) continue;
        emit_candidate(cu, wts[k]);
      }
    }

    if (hashed) {
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t slot = (*touched)[j];
        row_out.emplace_back((*keys)[slot], (*vals)[slot]);
        (*keys)[slot] = kInvalidCid;  // reset for the next row
        st.traffic.global_reads += 2;
        st.traffic.global_writes += 1;
      }
      std::sort(row_out.begin(), row_out.end(),
                [](const Pair& a, const Pair& b) { return a.first < b.first; });
      occupancy_sum += cap != 0 ? static_cast<double>(count) / static_cast<double>(cap) : 0;
    } else {
      // Stable sort preserves encounter order within a column, so the merge
      // sums each output entry in exactly the hash accumulator's order.
      const std::span<Pair> in(pairs->data(), count);
      std::stable_sort(in.begin(), in.end(),
                       [](const Pair& a, const Pair& b) { return a.first < b.first; });
      // Charged as an LSD radix sort over 32-bit keys: 4 passes, read+write
      // per element per pass — the footprint-for-traffic trade rung 2 makes.
      st.traffic.global_reads += 8 * count;
      st.traffic.global_writes += 8 * count;
      std::size_t j = 0;
      while (j < count) {
        const cid_t col = in[j].first;
        wt_t sum = 0;
        while (j < count && in[j].first == col) {
          st.traffic.global_reads += 1;  // merge scan
          sum += in[j].second;
          ++j;
        }
        row_out.emplace_back(col, sum);
      }
    }

    for (const auto& [col, w] : row_out) {
      neighbors.push_back(col);
      weights.push_back(w);
      st.traffic.global_writes += 2;
    }
    offsets[c + 1] = offsets[c] + static_cast<eid_t>(row_out.size());
    st.nnz += row_out.size();
    st.max_row_nnz = std::max<std::uint64_t>(st.max_row_nnz, row_out.size());
  }
  if (hashed && num_coarse > 0) occupancy_sum /= static_cast<double>(num_coarse);
  st.mean_occupancy = hashed ? occupancy_sum : 0;

  if (span.active()) {
    span.arg("rows", static_cast<double>(st.rows));
    span.arg("flops", static_cast<double>(st.flops));
    span.arg("nnz", static_cast<double>(st.nnz));
    span.arg("accumulator", hashed ? 0.0 : 1.0);
    span.arg("governor_forced", st.governor_forced ? 1.0 : 0.0);
    gpusim::attach_traffic(span, st.traffic);
  }

  return graph::GraphBuilder::from_sorted_csr(num_coarse, std::move(offsets),
                                              std::move(neighbors), std::move(weights));
}

}  // namespace gala::blas
