// Vertex reordering.
//
// GPU graph kernels are sensitive to vertex order: degree-sorted orders
// give warps uniform work (the shuffle/hash dispatch classes become
// contiguous), and BFS orders improve locality of community lookups. These
// utilities permute a graph and translate results back to original ids.
#pragma once

#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::graph {

/// A vertex permutation: new_id = perm[old_id]. Always a bijection on [0,V).
using Permutation = std::vector<vid_t>;

/// Descending-degree order (hubs first — the classic GPU scheduling order).
Permutation degree_descending_order(const Graph& g);

/// BFS order from `source` (unreached vertices appended in id order).
Permutation bfs_order(const Graph& g, vid_t source = 0);

/// Uniformly random permutation (Fisher-Yates), deterministic in `seed`.
/// Used to diversify ensemble runs: Louvain's id-based tie-breaks make a
/// relabelled instance explore a different local optimum.
Permutation random_permutation(vid_t n, std::uint64_t seed);

/// Applies a permutation: returns the isomorphic graph with renamed ids.
Graph apply_permutation(const Graph& g, const Permutation& perm);

/// Translates a community assignment on the permuted graph back to original
/// vertex ids: result[old_id] = permuted_assignment[perm[old_id]].
std::vector<cid_t> unpermute_assignment(const Permutation& perm,
                                        std::span<const cid_t> permuted_assignment);

/// Validates that `perm` is a bijection on [0, n). Throws otherwise.
void validate_permutation(const Permutation& perm, vid_t n);

}  // namespace gala::graph
