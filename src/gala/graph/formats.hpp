// Additional graph interchange formats.
//
//  - Matrix Market (%%MatrixMarket matrix coordinate ...): the format the
//    SuiteSparse collection distributes (symmetric patterns or weighted
//    coordinate listings). 1-based indices.
//  - METIS .graph: header "n m [fmt]", then one line per vertex listing its
//    neighbours (1-based), optionally with weights when fmt has the 1-bit
//    set. The format Grappolo/Vite consume.
//
// Both loaders symmetrise and merge duplicates through GraphBuilder, like
// load_edge_list.
#pragma once

#include <string>

#include "gala/graph/csr.hpp"

namespace gala::graph {

/// Loads a Matrix Market coordinate file as an undirected weighted graph.
/// `pattern` matrices get weight 1; `general` matrices are symmetrised.
Graph load_matrix_market(const std::string& path);

/// Loads a METIS .graph file (edge weights honoured when present).
Graph load_metis(const std::string& path);

/// Writes METIS .graph (fmt 1: edge weights).
void save_metis(const Graph& g, const std::string& path);

}  // namespace gala::graph
