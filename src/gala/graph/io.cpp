#include "gala/graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace gala::graph {
namespace {

constexpr std::uint64_t kBinaryMagic = 0x47414c41475246ULL;  // "GALAGRF"

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  GALA_CHECK(in.good(), "truncated binary graph file");
  return value;
}

template <typename T>
std::vector<T> read_vec(std::ifstream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  // Bound the announced element count by the bytes actually left in the
  // file: a corrupted/adversarial size field must become a structured
  // error, not a multi-gigabyte allocation (std::bad_alloc) below.
  const auto pos = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  const std::uint64_t remaining =
      end >= pos ? static_cast<std::uint64_t>(end - pos) : 0;
  GALA_CHECK(size <= remaining / sizeof(T),
             "corrupt binary graph: array claims " << size << " elements ("
                 << size * sizeof(T) << "B) but only " << remaining << "B remain");
  std::vector<T> v(size);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(size * sizeof(T)));
  GALA_CHECK(in.good(), "truncated binary graph file");
  return v;
}

}  // namespace

Graph load_edge_list(const std::string& path, vid_t num_vertices) {
  std::ifstream in(path);
  GALA_CHECK(in.is_open(), "cannot open edge list: " << path);
  struct RawEdge {
    vid_t u, v;
    wt_t w;
  };
  std::vector<RawEdge> edges;
  vid_t max_id = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    GALA_CHECK(static_cast<bool>(ls >> u >> v), "malformed edge at " << path << ":" << line_no);
    ls >> w;  // optional weight
    GALA_CHECK(u <= kInvalidVid - 1 && v <= kInvalidVid - 1,
               "vertex id overflow at " << path << ":" << line_no);
    GALA_CHECK(w > 0, "non-positive weight at " << path << ":" << line_no);
    edges.push_back({static_cast<vid_t>(u), static_cast<vid_t>(v), w});
    max_id = std::max({max_id, static_cast<vid_t>(u), static_cast<vid_t>(v)});
  }
  const vid_t n = num_vertices > 0 ? num_vertices : (edges.empty() ? 0 : max_id + 1);
  GALA_CHECK(n > max_id || edges.empty(), "num_vertices " << n << " <= max id " << max_id);
  GraphBuilder builder(n);
  // Directed duplicates (u->v and v->u in the input) would double the weight;
  // keep only the canonical orientation when both appear. We cannot know in
  // advance, so we canonicalise here and let the builder merge duplicates of
  // the same undirected edge by summing — matching how SNAP-style directed
  // graphs are conventionally symmetrised (weight 1 per undirected edge needs
  // pre-deduped input; weighted inputs sum parallel edges).
  for (const auto& e : edges) builder.add_edge(e.u, e.v, e.w);
  return builder.build();
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  GALA_CHECK(out.is_open(), "cannot open for writing: " << path);
  out << "# GALA edge list: " << summary(g) << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= v) out << v << ' ' << nbrs[i] << ' ' << ws[i] << '\n';
    }
  }
  GALA_CHECK(out.good(), "write failure: " << path);
}

void save_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GALA_CHECK(out.is_open(), "cannot open for writing: " << path);
  write_pod(out, kBinaryMagic);
  std::vector<eid_t> offsets(g.offsets().begin(), g.offsets().end());
  std::vector<vid_t> adj(g.adjacency().begin(), g.adjacency().end());
  std::vector<wt_t> w(g.adjacency_weights().begin(), g.adjacency_weights().end());
  write_vec(out, offsets);
  write_vec(out, adj);
  write_vec(out, w);
  GALA_CHECK(out.good(), "write failure: " << path);
}

Graph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GALA_CHECK(in.is_open(), "cannot open binary graph: " << path);
  GALA_CHECK(read_pod<std::uint64_t>(in) == kBinaryMagic, "bad magic in " << path);
  const auto offsets = read_vec<eid_t>(in);
  const auto adj = read_vec<vid_t>(in);
  const auto w = read_vec<wt_t>(in);
  GALA_CHECK(!offsets.empty() && adj.size() == w.size(), "inconsistent binary graph " << path);
  GALA_CHECK(offsets.front() == 0 && offsets.back() == adj.size(),
             "corrupt offsets in " << path << ": [" << offsets.front() << ", " << offsets.back()
                                   << "] for " << adj.size() << " adjacency entries");
  const vid_t n = static_cast<vid_t>(offsets.size() - 1);
  GraphBuilder builder(n);
  for (vid_t v = 0; v < n; ++v) {
    GALA_CHECK(offsets[v] <= offsets[v + 1],
               "non-monotone offsets at vertex " << v << " in " << path);
    for (eid_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      GALA_CHECK(adj[e] < n,
                 "neighbour id " << adj[e] << " out of range [0, " << n << ") in " << path);
      if (adj[e] >= v) builder.add_edge(v, adj[e], w[e]);
    }
  }
  return builder.build();
}

}  // namespace gala::graph
