#include "gala/graph/stats.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <unordered_map>

#include "gala/common/error.hpp"

namespace gala::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  std::vector<vid_t> degrees(n);
  for (vid_t v = 0; v < n; ++v) degrees[v] = g.out_degree(v);
  std::sort(degrees.begin(), degrees.end());
  s.min = degrees.front();
  s.max = degrees.back();
  s.median = degrees[n / 2];
  s.p99 = degrees[static_cast<std::size_t>(0.99 * (n - 1))];
  double sum = 0;
  for (const vid_t d : degrees) sum += d;
  s.mean = sum / n;
  const int buckets = s.max <= 1 ? 1 : std::bit_width(static_cast<std::uint32_t>(s.max));
  s.log2_histogram.assign(buckets, 0);
  for (const vid_t d : degrees) {
    const int b = d <= 1 ? 0 : std::bit_width(static_cast<std::uint32_t>(d)) - 1;
    ++s.log2_histogram[b];
  }
  return s;
}

std::vector<vid_t> connected_components(const Graph& g, vid_t& num_components) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> component(n, kInvalidVid);
  std::vector<vid_t> queue;
  num_components = 0;
  for (vid_t start = 0; start < n; ++start) {
    if (component[start] != kInvalidVid) continue;
    const vid_t id = num_components++;
    queue.clear();
    queue.push_back(start);
    component[start] = id;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const vid_t u : g.neighbors(queue[head])) {
        if (component[u] == kInvalidVid) {
          component[u] = id;
          queue.push_back(u);
        }
      }
    }
  }
  return component;
}

vid_t largest_component_size(const Graph& g) {
  vid_t k = 0;
  const auto component = connected_components(g, k);
  std::vector<vid_t> sizes(k, 0);
  for (const vid_t c : component) ++sizes[c];
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

CommunityStats community_stats(const Graph& g, std::span<const cid_t> community) {
  GALA_CHECK(community.size() == g.num_vertices(), "assignment size mismatch");
  CommunityStats s;
  if (community.empty()) return s;
  std::unordered_map<cid_t, vid_t> size_of;
  for (const cid_t c : community) ++size_of[c];
  s.num_communities = static_cast<vid_t>(size_of.size());
  std::vector<vid_t> sizes;
  sizes.reserve(size_of.size());
  for (const auto& [c, count] : size_of) sizes.push_back(count);
  std::sort(sizes.begin(), sizes.end());
  s.smallest = sizes.front();
  s.largest = sizes.back();
  s.median_size = sizes[sizes.size() / 2];
  s.mean_size = static_cast<double>(community.size()) / static_cast<double>(sizes.size());

  wt_t internal = 0;
  wt_t total = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      total += ws[i];
      if (community[nbrs[i]] == community[v]) internal += ws[i];
    }
  }
  s.coverage = total > 0 ? internal / total : 1.0;
  return s;
}

std::string describe(const DegreeStats& s) {
  std::ostringstream os;
  os << "degree min=" << s.min << " median=" << s.median << " mean=" << s.mean
     << " p99=" << s.p99 << " max=" << s.max;
  return os.str();
}

}  // namespace gala::graph
