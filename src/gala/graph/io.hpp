// Graph file I/O.
//
// Two formats:
//  - Text edge list: one "u v [w]" per line, '#' or '%' comment lines.
//    Directed inputs are symmetrised on load (the paper converts TW/EW to
//    undirected the same way).
//  - A compact binary snapshot (magic + CSR arrays) for fast reloads.
#pragma once

#include <string>

#include "gala/graph/csr.hpp"

namespace gala::graph {

/// Loads a text edge list. Vertex ids are 0-based; `num_vertices` of 0 means
/// "infer from the maximum id seen".
Graph load_edge_list(const std::string& path, vid_t num_vertices = 0);

/// Writes the graph as a text edge list (each undirected edge once).
void save_edge_list(const Graph& g, const std::string& path);

/// Binary snapshot round trip.
void save_binary(const Graph& g, const std::string& path);
Graph load_binary(const std::string& path);

}  // namespace gala::graph
