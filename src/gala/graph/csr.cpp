#include "gala/graph/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace gala::graph {

void GraphBuilder::add_edge(vid_t u, vid_t v, wt_t w) {
  GALA_CHECK(u < num_vertices_ && v < num_vertices_,
             "edge (" << u << "," << v << ") out of range [0," << num_vertices_ << ")");
  GALA_CHECK(w > 0, "edge weight must be positive, got " << w);
  edges_.push_back({u, v, w});
}

Graph GraphBuilder::build() {
  // Expand to directed entries: both directions for u != v, once for loops.
  std::vector<RawEdge> directed;
  directed.reserve(edges_.size() * 2);
  for (const RawEdge& e : edges_) {
    directed.push_back(e);
    if (e.src != e.dst) directed.push_back({e.dst, e.src, e.weight});
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(directed.begin(), directed.end(), [](const RawEdge& a, const RawEdge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  g.neighbors_.reserve(directed.size());
  g.weights_.reserve(directed.size());
  g.self_loops_.assign(num_vertices_, 0);

  // Merge duplicates (same src,dst) by summing weights while emitting CSR.
  std::size_t i = 0;
  while (i < directed.size()) {
    const vid_t src = directed[i].src;
    const vid_t dst = directed[i].dst;
    wt_t w = directed[i].weight;
    ++i;
    while (i < directed.size() && directed[i].src == src && directed[i].dst == dst) {
      w += directed[i].weight;
      ++i;
    }
    g.neighbors_.push_back(dst);
    g.weights_.push_back(w);
    ++g.offsets_[src + 1];
    if (src == dst) g.self_loops_[src] = w;
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  // Degrees and totals. Self-loops appear once in the adjacency, so adding
  // self_loops_[v] on top counts them twice in d(v).
  g.degrees_.assign(num_vertices_, 0);
  wt_t adj_weight = 0;  // sum over directed adjacency
  wt_t loop_weight = 0;
  for (vid_t v = 0; v < num_vertices_; ++v) {
    wt_t d = 0;
    for (eid_t e = g.offsets_[v]; e < g.offsets_[v + 1]; ++e) d += g.weights_[e];
    adj_weight += d;
    loop_weight += g.self_loops_[v];
    g.degrees_[v] = d + g.self_loops_[v];
    g.max_out_degree_ = std::max(g.max_out_degree_, g.out_degree(v));
  }
  // adj_weight counts each non-loop edge twice and each loop once.
  g.total_weight_ = (adj_weight - loop_weight) / 2 + loop_weight;

  eid_t loops = 0;
  for (vid_t v = 0; v < num_vertices_; ++v) {
    if (g.self_loops_[v] > 0) ++loops;
  }
  g.num_undirected_edges_ = (g.num_adjacency() - loops) / 2 + loops;
  return g;
}

Graph GraphBuilder::from_sorted_csr(vid_t num_vertices, std::vector<eid_t> offsets,
                                    std::vector<vid_t> neighbors, std::vector<wt_t> weights) {
  GALA_CHECK(offsets.size() == static_cast<std::size_t>(num_vertices) + 1,
             "from_sorted_csr: offset array size mismatch");
  GALA_CHECK(neighbors.size() == weights.size(), "from_sorted_csr: adjacency/weight size mismatch");
  GALA_CHECK(offsets.back() == static_cast<eid_t>(neighbors.size()),
             "from_sorted_csr: final offset != adjacency size");

  Graph g;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  g.weights_ = std::move(weights);
  g.self_loops_.assign(num_vertices, 0);
  g.degrees_.assign(num_vertices, 0);

  // Same derived-field formulas as build(): d(v) = row sum + self-loop (so
  // loops count twice), adj_weight counts each non-loop edge twice and each
  // loop once.
  wt_t adj_weight = 0;
  wt_t loop_weight = 0;
  eid_t loops = 0;
  for (vid_t v = 0; v < num_vertices; ++v) {
    wt_t d = 0;
    for (eid_t e = g.offsets_[v]; e < g.offsets_[v + 1]; ++e) {
      if (g.neighbors_[e] == v) {
        g.self_loops_[v] = g.weights_[e];
        ++loops;
      }
      d += g.weights_[e];
    }
    adj_weight += d;
    loop_weight += g.self_loops_[v];
    g.degrees_[v] = d + g.self_loops_[v];
    g.max_out_degree_ = std::max(g.max_out_degree_, g.out_degree(v));
  }
  g.total_weight_ = (adj_weight - loop_weight) / 2 + loop_weight;
  g.num_undirected_edges_ = (g.num_adjacency() - loops) / 2 + loops;
  return g;
}

void Graph::validate() const {
  const vid_t n = num_vertices();
  GALA_CHECK(offsets_.size() == static_cast<std::size_t>(n) + 1 || (n == 0 && offsets_.empty()),
             "offset array size mismatch");
  GALA_CHECK(neighbors_.size() == weights_.size(), "adjacency/weight size mismatch");
  wt_t degree_sum = 0;
  for (vid_t v = 0; v < n; ++v) {
    auto nbrs = neighbors(v);
    auto ws = weights(v);
    wt_t d = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      GALA_CHECK(nbrs[i] < n, "neighbor out of range");
      GALA_CHECK(ws[i] > 0, "non-positive weight");
      if (i > 0) GALA_CHECK(nbrs[i - 1] < nbrs[i], "adjacency not strictly sorted at v=" << v);
      d += ws[i];
      // Symmetry: the reverse edge must exist with the same weight.
      if (nbrs[i] != v) {
        auto rn = neighbors(nbrs[i]);
        auto it = std::lower_bound(rn.begin(), rn.end(), v);
        GALA_CHECK(it != rn.end() && *it == v, "missing reverse edge " << nbrs[i] << "->" << v);
        const auto idx = static_cast<std::size_t>(it - rn.begin());
        GALA_CHECK(std::abs(this->weights(nbrs[i])[idx] - ws[i]) < 1e-12,
                   "asymmetric weight on edge {" << v << "," << nbrs[i] << "}");
      }
    }
    GALA_CHECK(std::abs(d + self_loop(v) - degree(v)) < 1e-9, "degree mismatch at v=" << v);
    degree_sum += degree(v);
  }
  GALA_CHECK(std::abs(degree_sum - two_m()) < 1e-6 * std::max<wt_t>(1, two_m()),
             "sum of degrees (" << degree_sum << ") != 2|E| (" << two_m() << ")");
}

std::string summary(const Graph& g) {
  std::ostringstream os;
  os << "V=" << g.num_vertices() << " E=" << g.num_edges() << " |E|_w=" << g.total_weight()
     << " max_deg=" << g.max_out_degree();
  return os.str();
}

}  // namespace gala::graph
