#include "gala/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace gala::graph {
namespace {

/// Packs a directed pair into a 64-bit key for dedup sets.
std::uint64_t pair_key(vid_t u, vid_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Weighted sampling from a cumulative-sum array: returns the index i with
/// cum[i-1] <= r < cum[i].
std::size_t sample_cdf(const std::vector<double>& cum, Xoshiro256& rng) {
  GALA_ASSERT(!cum.empty());
  const double r = rng.next_double() * cum.back();
  auto it = std::upper_bound(cum.begin(), cum.end(), r);
  if (it == cum.end()) --it;
  return static_cast<std::size_t>(it - cum.begin());
}

}  // namespace

Graph erdos_renyi(vid_t n, eid_t m, std::uint64_t seed) {
  GALA_CHECK(n >= 2, "need at least two vertices");
  const eid_t max_edges = static_cast<eid_t>(n) * (n - 1) / 2;
  GALA_CHECK(m <= max_edges, "too many edges requested: " << m << " > " << max_edges);
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  GraphBuilder builder(n);
  while (seen.size() < m) {
    vid_t u = static_cast<vid_t>(rng.next_below(n));
    vid_t v = static_cast<vid_t>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.insert(pair_key(u, v)).second) builder.add_edge(u, v, 1.0);
  }
  return builder.build();
}

Graph ring_of_cliques(vid_t num_cliques, vid_t clique_size) {
  GALA_CHECK(num_cliques >= 1 && clique_size >= 2, "degenerate ring-of-cliques");
  const vid_t n = num_cliques * clique_size;
  GraphBuilder builder(n);
  for (vid_t c = 0; c < num_cliques; ++c) {
    const vid_t base = c * clique_size;
    for (vid_t i = 0; i < clique_size; ++i) {
      for (vid_t j = i + 1; j < clique_size; ++j) {
        builder.add_edge(base + i, base + j, 1.0);
      }
    }
    if (num_cliques > 1) {
      // Bridge: last vertex of this clique to first vertex of the next.
      const vid_t next_base = ((c + 1) % num_cliques) * clique_size;
      builder.add_edge(base + clique_size - 1, next_base, 1.0);
    }
  }
  return builder.build();
}

std::vector<vid_t> sample_power_law(vid_t lo, vid_t hi, double gamma, std::size_t count,
                                    Xoshiro256& rng) {
  GALA_CHECK(lo >= 1 && lo <= hi, "invalid power-law bounds [" << lo << "," << hi << "]");
  std::vector<double> cum;
  cum.reserve(hi - lo + 1);
  double acc = 0;
  for (vid_t x = lo; x <= hi; ++x) {
    acc += std::pow(static_cast<double>(x), -gamma);
    cum.push_back(acc);
  }
  std::vector<vid_t> out(count);
  for (auto& v : out) v = lo + static_cast<vid_t>(sample_cdf(cum, rng));
  return out;
}

Graph planted_partition(const PlantedPartitionParams& p, std::vector<cid_t>* ground_truth) {
  GALA_CHECK(p.num_vertices >= 2, "too few vertices");
  GALA_CHECK(p.num_communities >= 1 && p.num_communities <= p.num_vertices,
             "invalid community count " << p.num_communities);
  GALA_CHECK(p.mixing >= 0 && p.mixing < 1, "mixing must be in [0,1)");
  GALA_CHECK(p.avg_degree > 0, "avg_degree must be positive");
  Xoshiro256 rng(p.seed);

  const vid_t n = p.num_vertices;
  const cid_t k = p.num_communities;

  // Contiguous equal-size-ish community blocks.
  std::vector<cid_t> community(n);
  std::vector<std::vector<vid_t>> members(k);
  for (vid_t v = 0; v < n; ++v) {
    const cid_t c = static_cast<cid_t>((static_cast<std::uint64_t>(v) * k) / n);
    community[v] = c;
    members[c].push_back(v);
  }
  if (ground_truth) *ground_truth = community;

  // Per-vertex propensity (degree-corrected SBM): power-law skew or uniform.
  std::vector<double> theta(n, 1.0);
  if (p.degree_exponent > 0) {
    const vid_t hi = static_cast<vid_t>(std::max(2.0, p.max_degree_ratio));
    auto samples = sample_power_law(1, hi, p.degree_exponent, n, rng);
    for (vid_t v = 0; v < n; ++v) theta[v] = static_cast<double>(samples[v]);
  }

  GraphBuilder builder(n);

  // A spanning path inside each community guarantees no isolated vertices
  // and a connected community core.
  for (cid_t c = 0; c < k; ++c) {
    auto& mem = members[c];
    for (std::size_t i = 1; i < mem.size(); ++i) builder.add_edge(mem[i - 1], mem[i], 1.0);
  }

  // Internal edges, distributed across communities proportionally to the sum
  // of member propensities; endpoints sampled propensity-weighted.
  const double target_internal =
      static_cast<double>(n) * p.avg_degree * (1.0 - p.mixing) / 2.0;
  std::vector<double> comm_theta_cum;
  comm_theta_cum.reserve(k);
  {
    double acc = 0;
    for (cid_t c = 0; c < k; ++c) {
      double s = 0;
      for (vid_t v : members[c]) s += theta[v];
      acc += s;
      comm_theta_cum.push_back(acc);
    }
  }
  std::vector<std::vector<double>> member_theta_cum(k);
  for (cid_t c = 0; c < k; ++c) {
    double acc = 0;
    member_theta_cum[c].reserve(members[c].size());
    for (vid_t v : members[c]) {
      acc += theta[v];
      member_theta_cum[c].push_back(acc);
    }
  }
  for (double placed = 0; placed < target_internal; ++placed) {
    const cid_t c = static_cast<cid_t>(sample_cdf(comm_theta_cum, rng));
    if (members[c].size() < 2) continue;
    const vid_t u = members[c][sample_cdf(member_theta_cum[c], rng)];
    const vid_t v = members[c][sample_cdf(member_theta_cum[c], rng)];
    if (u == v) continue;  // slight undershoot is fine
    builder.add_edge(u, v, 1.0);
  }

  // External edges: both endpoints propensity-weighted, communities must
  // differ (retry a few times; failures undershoot the target slightly).
  std::vector<double> theta_cum(n);
  {
    double acc = 0;
    for (vid_t v = 0; v < n; ++v) {
      acc += theta[v];
      theta_cum[v] = acc;
    }
  }
  const double target_external = static_cast<double>(n) * p.avg_degree * p.mixing / 2.0;
  for (double placed = 0; placed < target_external; ++placed) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const vid_t u = static_cast<vid_t>(sample_cdf(theta_cum, rng));
      const vid_t v = static_cast<vid_t>(sample_cdf(theta_cum, rng));
      if (u != v && community[u] != community[v]) {
        builder.add_edge(u, v, 1.0);
        break;
      }
    }
  }
  return builder.build();
}

Graph rmat(const RmatParams& p) {
  GALA_CHECK(p.scale >= 1 && p.scale <= 30, "scale out of range");
  const double d = 1.0 - p.a - p.b - p.c;
  GALA_CHECK(p.a > 0 && p.b >= 0 && p.c >= 0 && d > 0, "invalid R-MAT quadrant probabilities");
  Xoshiro256 rng(p.seed);
  const vid_t n = vid_t{1} << p.scale;
  const eid_t target = static_cast<eid_t>(p.edge_factor * static_cast<double>(n));
  GraphBuilder builder(n);
  for (eid_t e = 0; e < target; ++e) {
    vid_t u = 0, v = 0;
    for (int bit = 0; bit < p.scale; ++bit) {
      const double r = rng.next_double();
      // Quadrant selection with light noise to avoid perfectly self-similar
      // artefacts (standard practice).
      int quad;
      if (r < p.a) {
        quad = 0;
      } else if (r < p.a + p.b) {
        quad = 1;
      } else if (r < p.a + p.b + p.c) {
        quad = 2;
      } else {
        quad = 3;
      }
      u = (u << 1) | static_cast<vid_t>(quad >> 1);
      v = (v << 1) | static_cast<vid_t>(quad & 1);
    }
    if (u == v) continue;
    builder.add_edge(u, v, 1.0);
  }
  return builder.build();
}

Graph lfr(const LfrParams& p, std::vector<cid_t>& ground_truth) {
  GALA_CHECK(p.num_vertices >= 10, "too few vertices for LFR");
  GALA_CHECK(p.min_degree >= 1 && p.min_degree <= p.max_degree, "bad degree bounds");
  GALA_CHECK(p.min_community >= 2 && p.min_community <= p.max_community, "bad community bounds");
  GALA_CHECK(p.mixing >= 0 && p.mixing < 1, "mixing must be in [0,1)");
  Xoshiro256 rng(p.seed);
  const vid_t n = p.num_vertices;

  // 1. Power-law degree sequence (tau1).
  auto degree = sample_power_law(p.min_degree, p.max_degree, p.degree_exponent, n, rng);

  // 2. Power-law community sizes (tau2) summing to n.
  std::vector<vid_t> comm_size;
  {
    vid_t total = 0;
    while (total < n) {
      vid_t s = sample_power_law(p.min_community, p.max_community, p.community_exponent, 1, rng)[0];
      s = std::min<vid_t>(s, n - total);
      // Avoid a trailing sliver smaller than min_community: fold it in.
      if (n - total - s < p.min_community && n - total - s > 0) s = n - total;
      comm_size.push_back(s);
      total += s;
    }
  }
  const cid_t k = static_cast<cid_t>(comm_size.size());

  // 3. Assign vertices to communities: random order, first community with
  //    room whose size can host the vertex's internal degree.
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (vid_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  ground_truth.assign(n, kInvalidCid);
  std::vector<std::vector<vid_t>> members(k);
  std::vector<vid_t> internal_degree(n);
  for (vid_t v = 0; v < n; ++v) {
    internal_degree[v] = static_cast<vid_t>(std::lround((1.0 - p.mixing) * degree[v]));
  }
  {
    std::vector<vid_t> room(comm_size.begin(), comm_size.end());
    for (vid_t v : order) {
      // Try a few random communities; prefer one large enough for int-degree.
      cid_t chosen = kInvalidCid;
      for (int attempt = 0; attempt < 16; ++attempt) {
        const cid_t c = static_cast<cid_t>(rng.next_below(k));
        if (room[c] == 0) continue;
        if (comm_size[c] > internal_degree[v] || attempt >= 8) {
          chosen = c;
          break;
        }
      }
      if (chosen == kInvalidCid) {
        for (cid_t c = 0; c < k; ++c) {
          if (room[c] > 0) {
            chosen = c;
            break;
          }
        }
      }
      GALA_CHECK(chosen != kInvalidCid, "LFR assignment overflow");
      ground_truth[v] = chosen;
      members[chosen].push_back(v);
      --room[chosen];
      // Cap internal degree to what the community can host.
      internal_degree[v] = std::min<vid_t>(internal_degree[v], comm_size[chosen] - 1);
    }
  }

  GraphBuilder builder(n);

  // 4. Internal wiring: configuration model per community.
  for (cid_t c = 0; c < k; ++c) {
    std::vector<vid_t> stubs;
    for (vid_t v : members[c]) {
      for (vid_t s = 0; s < internal_degree[v]; ++s) stubs.push_back(v);
    }
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
    }
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      if (stubs[i] != stubs[i + 1]) builder.add_edge(stubs[i], stubs[i + 1], 1.0);
    }
  }

  // 5. External wiring: global configuration model over leftover stubs,
  //    rejecting same-community pairs with a few reshuffle passes.
  std::vector<vid_t> ext_stubs;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t ext = degree[v] > internal_degree[v] ? degree[v] - internal_degree[v] : 0;
    for (vid_t s = 0; s < ext; ++s) ext_stubs.push_back(v);
  }
  for (std::size_t i = ext_stubs.size(); i > 1; --i) {
    std::swap(ext_stubs[i - 1], ext_stubs[rng.next_below(i)]);
  }
  std::vector<vid_t> deferred;
  for (std::size_t i = 0; i + 1 < ext_stubs.size(); i += 2) {
    const vid_t u = ext_stubs[i], v = ext_stubs[i + 1];
    if (u != v && ground_truth[u] != ground_truth[v]) {
      builder.add_edge(u, v, 1.0);
    } else {
      deferred.push_back(u);
      deferred.push_back(v);
    }
  }
  for (int pass = 0; pass < 4 && deferred.size() >= 2; ++pass) {
    for (std::size_t i = deferred.size(); i > 1; --i) {
      std::swap(deferred[i - 1], deferred[rng.next_below(i)]);
    }
    std::vector<vid_t> still;
    for (std::size_t i = 0; i + 1 < deferred.size(); i += 2) {
      const vid_t u = deferred[i], v = deferred[i + 1];
      if (u != v && ground_truth[u] != ground_truth[v]) {
        builder.add_edge(u, v, 1.0);
      } else {
        still.push_back(u);
        still.push_back(v);
      }
    }
    deferred.swap(still);
  }
  // Residual unmatched stubs are dropped (standard LFR implementations also
  // tolerate small degree-sequence deviations).
  return builder.build();
}

}  // namespace gala::graph
