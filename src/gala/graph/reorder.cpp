#include "gala/graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "gala/common/error.hpp"
#include "gala/common/prng.hpp"

namespace gala::graph {

void validate_permutation(const Permutation& perm, vid_t n) {
  GALA_CHECK(perm.size() == n, "permutation size " << perm.size() << " != " << n);
  std::vector<std::uint8_t> seen(n, 0);
  for (const vid_t p : perm) {
    GALA_CHECK(p < n, "permutation value " << p << " out of range");
    GALA_CHECK(!seen[p], "permutation repeats value " << p);
    seen[p] = 1;
  }
}

Permutation degree_descending_order(const Graph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](vid_t a, vid_t b) {
    return g.out_degree(a) > g.out_degree(b);
  });
  Permutation perm(n);
  for (vid_t rank = 0; rank < n; ++rank) perm[by_degree[rank]] = rank;
  return perm;
}

Permutation bfs_order(const Graph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(source < n || n == 0, "BFS source out of range");
  Permutation perm(n, kInvalidVid);
  std::vector<vid_t> queue;
  vid_t next_rank = 0;
  auto visit_from = [&](vid_t start) {
    queue.clear();
    queue.push_back(start);
    perm[start] = next_rank++;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const vid_t u : g.neighbors(queue[head])) {
        if (perm[u] == kInvalidVid) {
          perm[u] = next_rank++;
          queue.push_back(u);
        }
      }
    }
  };
  if (n > 0) visit_from(source);
  for (vid_t v = 0; v < n; ++v) {
    if (perm[v] == kInvalidVid) visit_from(v);
  }
  return perm;
}

Permutation random_permutation(vid_t n, std::uint64_t seed) {
  Permutation perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Xoshiro256 rng(seed);
  for (vid_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.next_below(i)]);
  return perm;
}

Graph apply_permutation(const Graph& g, const Permutation& perm) {
  const vid_t n = g.num_vertices();
  validate_permutation(perm, n);
  GraphBuilder builder(n);
  for (vid_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= v) builder.add_edge(perm[v], perm[nbrs[i]], ws[i]);
    }
  }
  return builder.build();
}

std::vector<cid_t> unpermute_assignment(const Permutation& perm,
                                        std::span<const cid_t> permuted_assignment) {
  GALA_CHECK(perm.size() == permuted_assignment.size(), "size mismatch");
  std::vector<cid_t> out(perm.size());
  for (std::size_t old_id = 0; old_id < perm.size(); ++old_id) {
    out[old_id] = permuted_assignment[perm[old_id]];
  }
  return out;
}

}  // namespace gala::graph
