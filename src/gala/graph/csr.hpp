// Weighted undirected graph in Compressed Sparse Row form.
//
// Conventions (paper §2.1):
//  - Each undirected edge {u,v}, u != v, appears in both adjacency lists.
//  - A self-loop (v,v) appears exactly once in v's adjacency list.
//  - The weighted degree d(v) counts a self-loop twice, so that
//      sum_v d(v) == 2*|E|  where  |E| = sum of undirected edge weights.
//    This keeps Equation 1 (modularity) and Equation 2 (gain) exact.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/common/types.hpp"

namespace gala::graph {

class Graph {
 public:
  Graph() = default;

  vid_t num_vertices() const { return static_cast<vid_t>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  /// Number of directed adjacency entries (2x undirected non-loop edges +
  /// 1x self-loops).
  eid_t num_adjacency() const { return static_cast<eid_t>(neighbors_.size()); }

  /// Number of undirected edges (self-loops count once).
  eid_t num_edges() const { return num_undirected_edges_; }

  /// |E| — total undirected edge weight, self-loops counted once.
  wt_t total_weight() const { return total_weight_; }

  /// 2|E| — the normalisation constant of Equations 1-2.
  wt_t two_m() const { return 2 * total_weight_; }

  std::span<const vid_t> neighbors(vid_t v) const {
    GALA_ASSERT(v < num_vertices());
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }

  std::span<const wt_t> weights(vid_t v) const {
    GALA_ASSERT(v < num_vertices());
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Adjacency-list length of v (self-loop contributes one entry).
  vid_t out_degree(vid_t v) const {
    GALA_ASSERT(v < num_vertices());
    return static_cast<vid_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Weighted degree d(v); self-loops counted twice (see header comment).
  wt_t degree(vid_t v) const {
    GALA_ASSERT(v < num_vertices());
    return degrees_[v];
  }

  /// Weight of v's self-loop (0 if none), counted once.
  wt_t self_loop(vid_t v) const {
    GALA_ASSERT(v < num_vertices());
    return self_loops_[v];
  }

  std::span<const eid_t> offsets() const { return offsets_; }
  std::span<const vid_t> adjacency() const { return neighbors_; }
  std::span<const wt_t> adjacency_weights() const { return weights_; }
  std::span<const wt_t> degrees() const { return degrees_; }

  vid_t max_out_degree() const { return max_out_degree_; }

  /// Bytes of CSR storage, from element counts (not vector capacities), so
  /// the figure is a pure function of the graph — memtrace reports it as
  /// the "graph" subsystem's resident gauge.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(offsets_.size() * sizeof(eid_t) +
                                      neighbors_.size() * sizeof(vid_t) +
                                      weights_.size() * sizeof(wt_t) +
                                      degrees_.size() * sizeof(wt_t) +
                                      self_loops_.size() * sizeof(wt_t));
  }

  /// Validates structural invariants (sorted adjacency, symmetry, degree
  /// sums). Intended for tests and after deserialisation; O(V + E log E).
  void validate() const;

 private:
  friend class GraphBuilder;

  std::vector<eid_t> offsets_;    // size V+1
  std::vector<vid_t> neighbors_;  // size num_adjacency()
  std::vector<wt_t> weights_;     // parallel to neighbors_
  std::vector<wt_t> degrees_;     // d(v), self-loops doubled
  std::vector<wt_t> self_loops_;  // self-loop weight per vertex
  eid_t num_undirected_edges_ = 0;
  wt_t total_weight_ = 0;
  vid_t max_out_degree_ = 0;
};

/// Accumulating builder. add_edge() takes undirected edges; duplicates are
/// merged by summing weights. build() produces a Graph with sorted adjacency.
class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex id range [0, num_vertices).
  explicit GraphBuilder(vid_t num_vertices) : num_vertices_(num_vertices) {}

  /// Adds undirected edge {u,v} with weight w (> 0). u == v adds a self-loop.
  void add_edge(vid_t u, vid_t v, wt_t w = 1.0);

  /// Number of add_edge calls so far.
  std::size_t num_added() const { return edges_.size(); }

  /// Builds the CSR graph. The builder is left empty afterwards.
  Graph build();

  /// Builds a Graph directly from already-assembled CSR arrays, bypassing
  /// the edge-list expand/sort/merge. The arrays must follow the directed
  /// adjacency convention (both directions for u != v, self-loops once),
  /// with each row strictly sorted by neighbour id and duplicates merged —
  /// exactly what build() emits and what the blas SpGEMM produces. Derived
  /// fields (degrees, self-loops, totals, edge counts) are computed with the
  /// same formulas as build(), so a graph assembled either way is identical.
  static Graph from_sorted_csr(vid_t num_vertices, std::vector<eid_t> offsets,
                               std::vector<vid_t> neighbors, std::vector<wt_t> weights);

 private:
  struct RawEdge {
    vid_t src;
    vid_t dst;
    wt_t weight;
  };

  vid_t num_vertices_;
  std::vector<RawEdge> edges_;
};

/// Returns a human-readable one-line summary ("V=..., E=..., ...").
std::string summary(const Graph& g);

}  // namespace gala::graph
