#include "gala/graph/formats.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace gala::graph {
namespace {

/// Reads the next non-comment line; returns false at EOF.
bool next_content_line(std::ifstream& in, std::string& line, char comment) {
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != comment) return true;
  }
  return false;
}

}  // namespace

Graph load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  GALA_CHECK(in.is_open(), "cannot open Matrix Market file: " << path);
  std::string header;
  GALA_CHECK(static_cast<bool>(std::getline(in, header)), "empty file: " << path);
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  GALA_CHECK(banner == "%%MatrixMarket" && object == "matrix" && format == "coordinate",
             path << ": only '%%MatrixMarket matrix coordinate' is supported");
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";
  GALA_CHECK(symmetric || symmetry == "general",
             path << ": unsupported symmetry '" << symmetry << "'");

  std::string line;
  GALA_CHECK(next_content_line(in, line, '%'), path << ": missing size line");
  std::istringstream ss(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  GALA_CHECK(static_cast<bool>(ss >> rows >> cols >> nnz), path << ": malformed size line");
  GALA_CHECK(rows == cols, path << ": adjacency matrices must be square");
  GALA_CHECK(rows > 0 && rows <= kInvalidVid, path << ": bad dimension " << rows);

  GraphBuilder builder(static_cast<vid_t>(rows));
  std::uint64_t seen = 0;
  while (seen < nnz && next_content_line(in, line, '%')) {
    std::istringstream es(line);
    std::uint64_t i = 0, j = 0;
    double w = 1.0;
    GALA_CHECK(static_cast<bool>(es >> i >> j), path << ": malformed entry '" << line << "'");
    if (!pattern) es >> w;
    GALA_CHECK(i >= 1 && i <= rows && j >= 1 && j <= rows, path << ": index out of range");
    GALA_CHECK(w > 0, path << ": non-positive weight " << w);
    // Symmetric files list one triangle; general files are symmetrised by
    // summing both triangles (the usual directed->undirected conversion).
    builder.add_edge(static_cast<vid_t>(i - 1), static_cast<vid_t>(j - 1), w);
    ++seen;
  }
  GALA_CHECK(seen == nnz, path << ": expected " << nnz << " entries, found " << seen);
  return builder.build();
}

Graph load_metis(const std::string& path) {
  std::ifstream in(path);
  GALA_CHECK(in.is_open(), "cannot open METIS file: " << path);
  std::string line;
  GALA_CHECK(next_content_line(in, line, '%'), path << ": missing header");
  std::istringstream hs(line);
  std::uint64_t n = 0, m = 0;
  std::string fmt = "0";
  GALA_CHECK(static_cast<bool>(hs >> n >> m), path << ": malformed header");
  hs >> fmt;
  const bool edge_weights = !fmt.empty() && (fmt.back() == '1');
  GALA_CHECK(fmt == "0" || fmt == "1" || fmt == "00" || fmt == "01",
             path << ": vertex weights/sizes (fmt " << fmt << ") are not supported");
  GALA_CHECK(n > 0 && n <= kInvalidVid, path << ": bad vertex count");

  GraphBuilder builder(static_cast<vid_t>(n));
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!std::getline(in, line)) {
      GALA_CHECK(false, path << ": truncated at vertex " << v + 1);
    }
    if (!line.empty() && line[0] == '%') {
      --v;  // comment line does not consume a vertex
      continue;
    }
    std::istringstream vs(line);
    std::uint64_t u = 0;
    while (vs >> u) {
      GALA_CHECK(u >= 1 && u <= n, path << ": neighbour " << u << " out of range");
      double w = 1.0;
      if (edge_weights) {
        GALA_CHECK(static_cast<bool>(vs >> w), path << ": missing edge weight");
      }
      // Each undirected edge appears on both endpoint lines; keep one.
      if (u - 1 > v) builder.add_edge(static_cast<vid_t>(v), static_cast<vid_t>(u - 1), w);
    }
  }
  const Graph g = builder.build();
  GALA_CHECK(g.num_edges() == m,
             path << ": header claims " << m << " edges, file contains " << g.num_edges());
  return g;
}

void save_metis(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  GALA_CHECK(out.is_open(), "cannot open for writing: " << path);
  // fmt 1: edge weights present. METIS has no self-loop support; assert.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    GALA_CHECK(g.self_loop(v) == 0, "METIS format cannot express self-loops (vertex " << v << ")");
  }
  out << g.num_vertices() << ' ' << g.num_edges() << " 1\n";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (i > 0) out << ' ';
      out << (nbrs[i] + 1) << ' ' << ws[i];
    }
    out << '\n';
  }
  GALA_CHECK(out.good(), "write failure: " << path);
}

}  // namespace gala::graph
