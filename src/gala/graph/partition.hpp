// Vertex partitioning for the multi-GPU layer (§4.3): contiguous vertex
// ranges balanced by adjacency size, so each simulated device owns its
// vertices and their full neighbour lists (1-D partitioning, as GALA does).
#pragma once

#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::graph {

struct VertexRange {
  vid_t begin = 0;
  vid_t end = 0;  // exclusive
  vid_t size() const { return end - begin; }
};

/// Splits [0, V) into `parts` contiguous ranges with near-equal adjacency
/// entry counts (edge-balanced, since per-vertex work is degree-driven).
std::vector<VertexRange> partition_by_edges(const Graph& g, std::size_t parts);

/// Returns the part owning vertex v under `ranges` (binary search).
std::size_t owner_of(const std::vector<VertexRange>& ranges, vid_t v);

/// The *local frontier* of a range: its vertices whose entire neighbourhood
/// lies inside the range. Every interaction these vertices have — move
/// decisions, weight-update messages in either direction — involves only
/// rank-local state, so the distributed engine may process them while a
/// collective is in flight without changing any observable result (the
/// overlap rule of the async sync pipeline). Computed once per level.
std::vector<vid_t> local_frontier(const Graph& g, VertexRange range);

}  // namespace gala::graph
