// Synthetic graph generators.
//
// These provide the workloads for every experiment: degree-corrected planted
// partitions (stand-ins for the paper's social/web graphs), R-MAT (skewed
// graphs without community structure, the Twitter stand-in), rings of
// cliques (sanity tests and the near-modularity-1 web-graph regime), uniform
// random graphs, and an LFR-style benchmark with ground-truth communities
// for the NMI experiments (Table 4).
//
// Every generator is deterministic given its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "gala/common/prng.hpp"
#include "gala/graph/csr.hpp"

namespace gala::graph {

/// Erdos–Renyi G(n, m): m distinct edges sampled uniformly. No self-loops.
Graph erdos_renyi(vid_t n, eid_t m, std::uint64_t seed);

/// `num_cliques` cliques of `clique_size` vertices, consecutive cliques
/// joined by a single edge in a ring. The classic high-modularity instance.
Graph ring_of_cliques(vid_t num_cliques, vid_t clique_size);

/// Parameters for the degree-corrected planted-partition generator.
struct PlantedPartitionParams {
  vid_t num_vertices = 10000;
  vid_t num_communities = 100;
  /// Average total degree per vertex (internal + external).
  double avg_degree = 16.0;
  /// Fraction of a vertex's edges that leave its community ("mixing").
  /// Louvain recovers modularity roughly (1 - mixing) - 1/num_communities.
  double mixing = 0.2;
  /// Power-law exponent for per-vertex degree propensity (Chung–Lu style).
  /// <= 0 disables skew (uniform propensity).
  double degree_exponent = 0.0;
  /// Max/min propensity ratio when skew is enabled (hub strength).
  double max_degree_ratio = 100.0;
  std::uint64_t seed = 1;
};

/// A planted-partition / degree-corrected-SBM graph. If `ground_truth` is
/// non-null it receives the planted community of every vertex.
Graph planted_partition(const PlantedPartitionParams& params,
                        std::vector<cid_t>* ground_truth = nullptr);

/// R-MAT power-law generator (Chakrabarti et al.), symmetrised, dedup'd.
/// Produces hub-heavy graphs with weak community structure.
struct RmatParams {
  int scale = 14;            // 2^scale vertices
  double edge_factor = 8.0;  // edges-per-vertex before dedup
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1-a-b-c
  std::uint64_t seed = 1;
};
Graph rmat(const RmatParams& params);

/// LFR-style benchmark (Lancichinetti–Fortunato–Radicchi, 2008):
/// power-law degrees, power-law community sizes, mixing parameter mu.
/// Ground-truth communities are written to `ground_truth`.
struct LfrParams {
  vid_t num_vertices = 100000;
  double degree_exponent = 2.5;     // tau1
  double community_exponent = 1.5;  // tau2
  vid_t min_degree = 5;
  vid_t max_degree = 100;
  vid_t min_community = 20;
  vid_t max_community = 1000;
  double mixing = 0.3;  // mu: fraction of each vertex's edges leaving its community
  std::uint64_t seed = 1;
};
Graph lfr(const LfrParams& params, std::vector<cid_t>& ground_truth);

/// Samples `count` values from a discrete bounded power law p(x) ~ x^-gamma
/// over [lo, hi]. Exposed for tests.
std::vector<vid_t> sample_power_law(vid_t lo, vid_t hi, double gamma, std::size_t count,
                                    Xoshiro256& rng);

}  // namespace gala::graph
