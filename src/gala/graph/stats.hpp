// Graph and partition statistics: degree distribution, connected
// components, and per-community summaries. Used by the CLI tools, the
// examples, and the benches' workload descriptions.
#pragma once

#include <string>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::graph {

struct DegreeStats {
  vid_t min = 0;
  vid_t max = 0;
  double mean = 0;
  double median = 0;
  double p99 = 0;
  /// Histogram over power-of-two buckets: bucket[i] counts vertices with
  /// out-degree in [2^i, 2^(i+1)) (bucket 0 also holds degree 0..1).
  std::vector<vid_t> log2_histogram;
};

DegreeStats degree_stats(const Graph& g);

/// Connected components via BFS. Returns the component id per vertex (dense
/// ids in discovery order) and sets `num_components`.
std::vector<vid_t> connected_components(const Graph& g, vid_t& num_components);

/// Size of the largest connected component.
vid_t largest_component_size(const Graph& g);

/// Per-community summary of a partition.
struct CommunityStats {
  vid_t num_communities = 0;
  vid_t largest = 0;
  vid_t smallest = 0;
  double mean_size = 0;
  double median_size = 0;
  /// Fraction of edge weight inside communities (the "coverage" measure).
  double coverage = 0;
};

CommunityStats community_stats(const Graph& g, std::span<const cid_t> community);

/// One-line human-readable report of degree_stats.
std::string describe(const DegreeStats& s);

}  // namespace gala::graph
