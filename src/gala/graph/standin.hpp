// Scaled-down synthetic stand-ins for the paper's seven evaluation graphs
// (Table 2). Each stand-in reproduces the *character* of the original that
// the experiments depend on — community sharpness (final modularity level),
// degree skew, relative size and density — at a size that runs on one
// machine (see DESIGN.md §1). The abbreviations match the paper.
//
//   FR  com-Friendster : largest social graph, Q≈0.63
//   LJ  com-LiveJournal: social graph, Q≈0.75
//   OR  com-Orkut      : dense social graph, Q≈0.66
//   TW  twitter-2010   : hub-heavy, blurred communities, Q≈0.47
//   UK  uk-2002        : web graph, extremely sharp communities, Q≈0.99
//   EW  enwiki-2022    : skewed, Q≈0.66
//   HW  hollywood-2011 : dense collaboration graph, Q≈0.75
#pragma once

#include <string>
#include <vector>

#include "gala/graph/csr.hpp"

namespace gala::graph {

/// Paper-order abbreviations: FR, LJ, OR, TW, UK, EW, HW.
const std::vector<std::string>& standin_abbrs();

/// Full dataset name a stand-in substitutes for ("com-Friendster", ...).
std::string standin_full_name(const std::string& abbr);

/// Builds the stand-in graph. `scale` multiplies the vertex count (1.0 is
/// the default bench size, small enough for seconds-long runs); results are
/// deterministic in (abbr, scale, seed).
Graph make_standin(const std::string& abbr, double scale = 1.0, std::uint64_t seed = 42);

}  // namespace gala::graph
