#include "gala/graph/standin.hpp"

#include <cmath>

#include "gala/graph/generators.hpp"

namespace gala::graph {
namespace {

vid_t scaled(double base, double scale) {
  return static_cast<vid_t>(std::max(64.0, base * scale));
}

}  // namespace

const std::vector<std::string>& standin_abbrs() {
  static const std::vector<std::string> abbrs = {"FR", "LJ", "OR", "TW", "UK", "EW", "HW"};
  return abbrs;
}

std::string standin_full_name(const std::string& abbr) {
  if (abbr == "FR") return "com-Friendster";
  if (abbr == "LJ") return "com-LiveJournal";
  if (abbr == "OR") return "com-Orkut";
  if (abbr == "TW") return "twitter-2010";
  if (abbr == "UK") return "uk-2002";
  if (abbr == "EW") return "enwiki-2022";
  if (abbr == "HW") return "hollywood-2011";
  GALA_CHECK(false, "unknown stand-in abbreviation: " << abbr);
}

Graph make_standin(const std::string& abbr, double scale, std::uint64_t seed) {
  GALA_CHECK(scale > 0, "scale must be positive");
  if (abbr == "FR") {
    // Largest of the suite; moderate mixing -> Q ~ 0.63.
    PlantedPartitionParams p;
    p.num_vertices = scaled(80000, scale);
    p.num_communities = static_cast<vid_t>(std::max(8.0, 400 * scale));
    p.avg_degree = 24;
    p.mixing = 0.355;
    p.degree_exponent = 2.8;
    p.max_degree_ratio = 60;
    p.seed = seed;
    return planted_partition(p);
  }
  if (abbr == "LJ") {
    PlantedPartitionParams p;
    p.num_vertices = scaled(40000, scale);
    p.num_communities = static_cast<vid_t>(std::max(8.0, 250 * scale));
    p.avg_degree = 17;
    p.mixing = 0.235;
    p.degree_exponent = 2.6;
    p.max_degree_ratio = 80;
    p.seed = seed + 1;
    return planted_partition(p);
  }
  if (abbr == "OR") {
    // Dense social graph.
    PlantedPartitionParams p;
    p.num_vertices = scaled(30000, scale);
    p.num_communities = static_cast<vid_t>(std::max(8.0, 120 * scale));
    p.avg_degree = 40;
    p.mixing = 0.32;
    p.degree_exponent = 2.7;
    p.max_degree_ratio = 60;
    p.seed = seed + 2;
    return planted_partition(p);
  }
  if (abbr == "TW") {
    // Hub-heavy with heavily blurred communities: Louvain converges to the
    // paper's low-modularity regime (Q ~ 0.47) and pruning predictors
    // struggle, as on the real twitter-2010.
    PlantedPartitionParams p;
    p.num_vertices = scaled(60000, scale);
    p.num_communities = static_cast<vid_t>(std::max(8.0, 300 * scale));
    p.avg_degree = 30;
    p.mixing = 0.50;
    p.degree_exponent = 2.1;
    p.max_degree_ratio = 300;  // extreme hubs
    p.seed = seed + 3;
    return planted_partition(p);
  }
  if (abbr == "UK") {
    // Web graph: near-disconnected tight communities, Q ~ 0.99.
    PlantedPartitionParams p;
    p.num_vertices = scaled(50000, scale);
    p.num_communities = static_cast<vid_t>(std::max(16.0, 250 * scale));
    p.avg_degree = 16;
    p.mixing = 0.004;
    p.degree_exponent = 2.2;
    p.max_degree_ratio = 200;  // web graphs have extreme hubs
    p.seed = seed + 4;
    return planted_partition(p);
  }
  if (abbr == "EW") {
    PlantedPartitionParams p;
    p.num_vertices = scaled(35000, scale);
    p.num_communities = static_cast<vid_t>(std::max(8.0, 180 * scale));
    p.avg_degree = 28;
    p.mixing = 0.325;
    p.degree_exponent = 2.3;
    p.max_degree_ratio = 150;
    p.seed = seed + 5;
    return planted_partition(p);
  }
  if (abbr == "HW") {
    // Dense collaboration graph (cliques of co-appearing actors).
    PlantedPartitionParams p;
    p.num_vertices = scaled(20000, scale);
    p.num_communities = static_cast<vid_t>(std::max(8.0, 100 * scale));
    p.avg_degree = 56;
    p.mixing = 0.235;
    p.degree_exponent = 2.5;
    p.max_degree_ratio = 40;
    p.seed = seed + 6;
    return planted_partition(p);
  }
  GALA_CHECK(false, "unknown stand-in abbreviation: " << abbr);
}

}  // namespace gala::graph
