#include "gala/graph/partition.hpp"

#include <algorithm>

#include "gala/common/error.hpp"

namespace gala::graph {

std::vector<VertexRange> partition_by_edges(const Graph& g, std::size_t parts) {
  GALA_CHECK(parts >= 1, "need at least one part");
  const vid_t n = g.num_vertices();
  std::vector<VertexRange> ranges(parts);
  const eid_t total = g.num_adjacency();
  vid_t v = 0;
  eid_t consumed = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    ranges[p].begin = v;
    // Give part p edges up to the p+1-th fraction of the total.
    const eid_t target = total * static_cast<eid_t>(p + 1) / parts;
    while (v < n && (consumed < target || p + 1 == parts)) {
      consumed += g.out_degree(v);
      ++v;
      // Leave at least one vertex per remaining part when possible.
      if (p + 1 < parts && n - v <= parts - p - 1) break;
    }
    ranges[p].end = v;
  }
  ranges.back().end = n;
  return ranges;
}

std::vector<vid_t> local_frontier(const Graph& g, VertexRange range) {
  std::vector<vid_t> frontier;
  for (vid_t v = range.begin; v < range.end; ++v) {
    bool local = true;
    for (const vid_t u : g.neighbors(v)) {
      if (u < range.begin || u >= range.end) {
        local = false;
        break;
      }
    }
    if (local) frontier.push_back(v);
  }
  return frontier;
}

std::size_t owner_of(const std::vector<VertexRange>& ranges, vid_t v) {
  auto it = std::upper_bound(ranges.begin(), ranges.end(), v,
                             [](vid_t value, const VertexRange& r) { return value < r.end; });
  GALA_CHECK(it != ranges.end() && v >= it->begin, "vertex " << v << " not covered by partition");
  return static_cast<std::size_t>(it - ranges.begin());
}

}  // namespace gala::graph
