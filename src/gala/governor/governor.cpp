#include "gala/governor/governor.hpp"

#include <algorithm>

#include "gala/common/json.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/resilience/fault_injection.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::governor {

namespace {

// Escalation thresholds, as projected-utilisation fractions. Rungs 2-4 only
// shrink *future* allocations, so they must engage below the wall; only the
// floor waits for an actual overrun.
constexpr double kReclaimAt = 0.80;
constexpr double kGlobalOnlyAt = 0.85;
constexpr double kSparseAt = 0.90;
constexpr double kChunkAt = 0.95;

void admit_trampoline(std::string_view tag, std::uint64_t modeled, bool may_throw) {
  Governor::global().admit(tag, modeled, may_throw);
}

std::string_view subsystem_of(std::string_view tag) {
  const auto dot = tag.find('.');
  return dot == std::string_view::npos ? tag : tag.substr(0, dot);
}

}  // namespace

const char* to_string(Rung rung) {
  switch (rung) {
    case Rung::None:
      return "none";
    case Rung::ReclaimSlabs:
      return "reclaim-slabs";
    case Rung::GlobalOnlyHash:
      return "global-only-hash";
    case Rung::SparseSync:
      return "sparse-sync";
    case Rung::ChunkedFrontier:
      return "chunked-frontier";
    case Rung::HostFallback:
      return "host-fallback";
  }
  return "?";
}

Governor& Governor::global() {
  static Governor governor;
  return governor;
}

void Governor::install(BudgetConfig config) {
  {
    std::lock_guard lock(mutex_);
    subsystem_caps_ = std::move(config.subsystem_caps);
    transitions_.clear();
  }
  total_.store(config.total_bytes, std::memory_order_relaxed);
  initial_total_.store(config.total_bytes, std::memory_order_relaxed);
  chunk_.store(config.frontier_chunk > 0 ? config.frontier_chunk : 4096,
               std::memory_order_relaxed);
  rung_.store(0, std::memory_order_relaxed);
  admits_.store(0, std::memory_order_relaxed);
  denials_.store(0, std::memory_order_relaxed);
  shrinks_.store(0, std::memory_order_relaxed);
  reclaims_.store(0, std::memory_order_relaxed);
  // Modeled live bytes are the enforcement input, so the registry must be
  // accounting while a budget is in force.
  memtrace::MemRegistry::arm();
  memtrace::MemRegistry::set_admit_hook(&admit_trampoline);
  enabled_flag_.store(true, std::memory_order_relaxed);
}

void Governor::uninstall() {
  enabled_flag_.store(false, std::memory_order_relaxed);
  memtrace::MemRegistry::set_admit_hook(nullptr);
  // Rung, budget, and stats stay readable: reports are rendered after the
  // run, when the budget is no longer being enforced.
}

void Governor::admit(std::string_view tag, std::uint64_t bytes, bool may_throw) {
  if (!enabled()) return;
  admits_.fetch_add(1, std::memory_order_relaxed);
  maybe_shrink(tag);
  const std::uint64_t budget = total_.load(std::memory_order_relaxed);
  auto& registry = memtrace::MemRegistry::global();
  const std::uint64_t projected = registry.live_total() + bytes;
  // total 0 = unlimited: observe only — but subsystem caps still enforce.
  double util = budget == 0 ? 0.0
                            : static_cast<double>(projected) / static_cast<double>(budget);
  bool over = budget != 0 && projected > budget;
  {
    std::lock_guard lock(mutex_);
    if (!subsystem_caps_.empty()) {
      const std::string_view subsys = subsystem_of(tag);
      for (const auto& [name, cap] : subsystem_caps_) {
        if (name != subsys || cap == 0) continue;
        const std::uint64_t sub_projected = registry.live_subsystem(subsys) + bytes;
        util = std::max(util, static_cast<double>(sub_projected) / static_cast<double>(cap));
        over = over || sub_projected > cap;
      }
    }
  }

  if (util >= kReclaimAt) escalate_to(Rung::ReclaimSlabs, projected, budget);
  if (util >= kGlobalOnlyAt) escalate_to(Rung::GlobalOnlyHash, projected, budget);
  if (util >= kSparseAt) escalate_to(Rung::SparseSync, projected, budget);
  if (util >= kChunkAt) escalate_to(Rung::ChunkedFrontier, projected, budget);

  if (!over) return;
  // Last-ditch host-side reclaim; the modeled charge is unchanged, but a
  // trimmed pool means the refusal below never strands idle host memory.
  run_reclaimers();
  denials_.fetch_add(1, std::memory_order_relaxed);
  telemetry::Registry::global().counter("governor.denials").add(1);
  if (!may_throw) return;  // charges/gauges escalate but never throw mid-flight
  escalate_to(Rung::HostFallback, projected, budget);
  GALA_THROW(ResourceExhausted, "memory budget exceeded: '"
                                    << std::string(tag) << "' needs " << bytes
                                    << " B, projected " << projected << " B > budget " << budget
                                    << " B (governor rung " << to_string(rung()) << ")");
}

void Governor::escalate_to(Rung target, std::uint64_t projected, std::uint64_t budget) {
  const auto t = static_cast<std::uint8_t>(target);
  if (rung_.load(std::memory_order_relaxed) >= t) return;
  {
    // Rung store, transition record, and flight event form ONE critical
    // section: concurrent escalations serialise here, so flight sequence
    // numbers are assigned in rung order and trace_check --flight's
    // monotonicity check holds even when ranks race up the ladder.
    std::lock_guard lock(mutex_);
    if (rung_.load(std::memory_order_relaxed) >= t) return;
    rung_.store(t, std::memory_order_relaxed);
    transitions_.push_back({target, projected, budget});
    telemetry::flight(telemetry::FlightKind::GovernorRung, static_cast<double>(t),
                      static_cast<double>(projected));
  }
  telemetry::Registry::global().counter("governor.rung_transitions").add(1);
  if (target == Rung::ReclaimSlabs) run_reclaimers();
}

std::uint64_t Governor::run_reclaimers() {
  std::uint64_t freed = 0;
  {
    // Reclaimers are invoked while holding mutex_: unregister_reclaimer()
    // takes the same lock, so a context tearing down blocks until any
    // in-flight invocation of its reclaimer has drained and the captured
    // `this` can never dangle. The callbacks only trim pool free lists and
    // never re-enter the governor, so holding the lock across them is safe.
    std::lock_guard lock(mutex_);
    for (const auto& [key, fn] : reclaimers_) freed += fn();
  }
  reclaims_.fetch_add(1, std::memory_order_relaxed);
  if (freed > 0) {
    telemetry::Registry::global().counter("governor.reclaimed_bytes").add(freed);
  }
  return freed;
}

void Governor::maybe_shrink(std::string_view tag) {
  using resilience::FaultInjector;
  if (!FaultInjector::armed()) return;
  if (!FaultInjector::global().should_fire(resilience::FaultSite::BudgetShrink, tag)) return;
  const std::uint64_t cur = total_.load(std::memory_order_relaxed);
  if (cur == 0) return;
  // Cut to half, but never below what is already live: the shrink models an
  // external reservation landing, not a demand to evict held memory.
  shrink_budget(std::max(memtrace::MemRegistry::global().live_total(), cur / 2));
}

void Governor::shrink_budget(std::uint64_t new_total) {
  if (new_total == 0) new_total = 1;  // 0 would mean unlimited; a shrink keeps enforcement on
  std::uint64_t cur = total_.load(std::memory_order_relaxed);
  do {
    if (cur == 0 || new_total >= cur) return;
  } while (!total_.compare_exchange_weak(cur, new_total, std::memory_order_relaxed));
  shrinks_.fetch_add(1, std::memory_order_relaxed);
  telemetry::Registry::global().counter("governor.budget_shrinks").add(1);
  telemetry::flight(telemetry::FlightKind::GovernorShrink, static_cast<double>(new_total),
                    static_cast<double>(cur));
}

void Governor::register_reclaimer(const void* key, std::function<std::uint64_t()> fn) {
  std::lock_guard lock(mutex_);
  reclaimers_.emplace_back(key, std::move(fn));
}

void Governor::unregister_reclaimer(const void* key) {
  std::lock_guard lock(mutex_);
  reclaimers_.erase(std::remove_if(reclaimers_.begin(), reclaimers_.end(),
                                   [key](const auto& r) { return r.first == key; }),
                    reclaimers_.end());
}

std::string Governor::section_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("budget_total").value(total_.load(std::memory_order_relaxed));
  w.key("budget_initial").value(initial_total_.load(std::memory_order_relaxed));
  const Rung r = rung();
  w.key("rung").value(to_string(r));
  w.key("rung_ordinal").value(static_cast<std::uint64_t>(r));
  w.key("admits").value(admits());
  w.key("denials").value(denials());
  w.key("shrinks").value(shrinks());
  w.key("reclaims").value(reclaims());
  w.key("frontier_chunk").value(static_cast<std::uint64_t>(chunk_.load(std::memory_order_relaxed)));
  std::lock_guard lock(mutex_);
  w.key("subsystem_caps").begin_array();
  for (const auto& [name, cap] : subsystem_caps_) {
    w.begin_object();
    w.key("name").value(name);
    w.key("cap").value(cap);
    w.end_object();
  }
  w.end_array();
  w.key("transitions").begin_array();
  for (const RungTransition& t : transitions_) {
    w.begin_object();
    w.key("rung").value(to_string(t.rung));
    w.key("ordinal").value(static_cast<std::uint64_t>(t.rung));
    w.key("projected").value(t.projected);
    w.key("budget").value(t.budget);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::uint64_t min_feasible_budget(std::uint64_t hi,
                                  const std::function<bool(std::uint64_t)>& feasible,
                                  std::uint64_t granularity) {
  if (granularity == 0) granularity = 1;
  std::uint64_t hi_k = std::max<std::uint64_t>(1, (hi + granularity - 1) / granularity);
  if (!feasible(hi_k * granularity)) return 0;
  if (feasible(granularity)) return granularity;
  std::uint64_t lo_k = 1;  // known infeasible; hi_k known feasible
  while (hi_k - lo_k > 1) {
    const std::uint64_t mid = lo_k + (hi_k - lo_k) / 2;
    if (feasible(mid * granularity)) {
      hi_k = mid;
    } else {
      lo_k = mid;
    }
  }
  return hi_k * granularity;
}

}  // namespace gala::governor
