// gala::governor — enforceable memory budgets with a deterministic
// graceful-degradation ladder.
//
// The memtrace registry (PR 7) answers "where do the bytes live"; the
// governor turns that accounting into an enforceable contract. Installing a
// budget arms an admission hook that memtrace invokes before any modeled
// bytes go live (Workspace checkouts, one-shot charges, resident gauges).
// Instead of failing at the wall, the governor walks a degradation ladder,
// each rung trading performance for footprint while preserving bit-identical
// partitions:
//
//   rung 1  reclaim-slabs     trim idle pooled Workspace slabs (host bytes;
//                             the modeled charge is unchanged — this rung
//                             frees the slack the pool was hoarding)
//   rung 2  global-only-hash  downgrade Hierarchical hashtables to
//                             GlobalOnly (PR 3's exact-parity fallback), so
//                             shared-arena pages stop being charged; the
//                             blas SpGEMM likewise swaps its hash
//                             accumulator for the sorted-merge one (tight
//                             pair buffer instead of power-of-two slack)
//   rung 3  sparse-sync       force sparse+compressed sync staging in the
//                             distributed engine (snapshot at level grain so
//                             every rank agrees on collective shapes)
//   rung 4  chunked-frontier  process the phase-1 decide frontier through a
//                             bounded window instead of materialising the
//                             whole active list
//   rung 5  host-fallback     the floor: refuse the checkout by throwing
//                             ResourceExhausted, which the resilience
//                             supervisor retries and then degrades to the
//                             sequential host path
//
// Determinism: every decision keys off *modeled* bytes (live checked-out +
// resident), never host capacities, so a fixed (graph, config, budget)
// triple walks the same rungs in the same order run after run under
// sequential launches. Rungs are sticky — the ladder only escalates, never
// de-escalates mid-run — so rung events in flight dumps are monotonically
// non-decreasing, which trace_check --flight validates.
//
// Thresholds: rungs 1-4 engage at 80/85/90/95% projected utilisation. They
// have to engage *below* the wall because each rung only shrinks future
// allocations; waiting for an overrun would collapse the whole ladder into
// the rung-5 throw. The throw itself fires only on may-throw admissions
// (Workspace checkouts, where unwinding is clean); charges and resident
// gauges observe-and-escalate but never throw mid-collective.
//
// Fault site: `budget-shrink` (gala::resilience) cuts the budget mid-run to
// max(live, budget/2) on a seeded FaultPlan schedule, exercising the
// supervisor's retry/rollback machinery under genuine memory pressure.
//
// Cost discipline: uninstalled, the memtrace hook pointer is null and every
// allocation site pays one relaxed load. Installed, an admission is a couple
// of relaxed loads plus a compare; the mutex is only taken on escalation,
// shrink, and reclaim — all rare.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gala/common/error.hpp"

namespace gala::governor {

/// Degradation ladder rungs, ordered by severity. The governor's current
/// rung is the highest it has escalated to; flags for rungs 2-4 are derived
/// (rung() >= that rung).
enum class Rung : std::uint8_t {
  None = 0,
  ReclaimSlabs = 1,
  GlobalOnlyHash = 2,
  SparseSync = 3,
  ChunkedFrontier = 4,
  HostFallback = 5,
};

const char* to_string(Rung rung);

struct BudgetConfig {
  /// Hard modeled-bytes budget; 0 means unlimited (governor still observes).
  std::uint64_t total_bytes = 0;
  /// Optional per-subsystem caps, keyed by tag prefix ("phase1", "gpusim",
  /// ...). A cap overrun escalates the ladder exactly like the total.
  std::vector<std::pair<std::string, std::uint64_t>> subsystem_caps;
  /// Decide-frontier window applied at rung 4 (vertices per kernel launch).
  std::size_t frontier_chunk = 4096;
};

/// One ladder escalation, recorded for the report.
struct RungTransition {
  Rung rung = Rung::None;
  std::uint64_t projected = 0;  ///< modeled bytes that triggered it
  std::uint64_t budget = 0;     ///< budget in force at that moment
};

/// Process-wide budget enforcer. Install once (CLI --mem-budget, tests,
/// bench probes); every memtrace-instrumented allocation site then funnels
/// through admit() via the registry's admission hook.
class Governor {
 public:
  static Governor& global();

  /// True when a budget is installed (one relaxed load).
  static bool enabled() { return enabled_flag_.load(std::memory_order_relaxed); }

  /// Installs `config`, resets ladder state, and arms the memtrace admission
  /// hook. Budgets must be enforceable, so memtrace is armed as a side
  /// effect (modeled live bytes are the enforcement input).
  void install(BudgetConfig config);
  /// Removes the hook and clears the budget; ladder state and stats stay
  /// readable until the next install().
  void uninstall();

  /// Admission check for `bytes` modeled bytes under `tag`. Escalates the
  /// ladder when projected utilisation crosses a threshold; on a may-throw
  /// site whose projected total still exceeds the budget after reclaim, the
  /// floor throws gala::ResourceExhausted. Non-throwing sites record the
  /// overrun and escalate only. Evaluates the `budget-shrink` fault site.
  void admit(std::string_view tag, std::uint64_t bytes, bool may_throw);

  Rung rung() const { return static_cast<Rung>(rung_.load(std::memory_order_relaxed)); }
  /// Rung 2+: decide kernels must run the GlobalOnly hashtable policy.
  bool force_global_only() const { return rung() >= Rung::GlobalOnlyHash; }
  /// Rung 2+: the blas SpGEMM must trade its hash accumulator (power-of-two
  /// slack) for the sorted-merge accumulator's tight pair buffer. Results
  /// are bit-identical — only footprint and traffic change.
  bool force_sorted_accumulator() const { return rung() >= Rung::GlobalOnlyHash; }
  /// Rung 3+: the distributed engine must use sparse+compressed staging.
  bool force_sparse_sync() const { return rung() >= Rung::SparseSync; }
  /// Rung 4+: the decide-frontier window, in vertices; 0 when unchunked.
  std::size_t frontier_chunk() const {
    return rung() >= Rung::ChunkedFrontier ? chunk_.load(std::memory_order_relaxed) : 0;
  }

  std::uint64_t budget_total() const { return total_.load(std::memory_order_relaxed); }
  /// Cuts the budget to `new_total` (the budget-shrink fault path, also
  /// callable directly by tests). Never raises it.
  void shrink_budget(std::uint64_t new_total);

  /// Registers a slab reclaimer (Workspace::trim) under `key`; rung 1
  /// invokes every registered reclaimer once per escalation. The callback
  /// returns host bytes freed. Reclaimers run under the governor mutex, so
  /// they must be brief and must never call back into the governor.
  void register_reclaimer(const void* key, std::function<std::uint64_t()> fn);
  /// Removes `key`'s reclaimer. Blocks until any in-flight invocation has
  /// drained (invocations hold the same mutex), so the callback's captures
  /// may be destroyed as soon as this returns — ~ExecutionContext relies on
  /// this to unregister a reclaimer that captures the dying context.
  void unregister_reclaimer(const void* key);

  /// Statistics for the report (deterministic under sequential launches).
  std::uint64_t admits() const { return admits_.load(std::memory_order_relaxed); }
  std::uint64_t denials() const { return denials_.load(std::memory_order_relaxed); }
  std::uint64_t shrinks() const { return shrinks_.load(std::memory_order_relaxed); }
  std::uint64_t reclaims() const { return reclaims_.load(std::memory_order_relaxed); }

  /// The "governor" JSON object fragment embedded in the --mem-out report
  /// and written standalone by --governor-out: budget, current rung, counts,
  /// and the ordered transition list.
  std::string section_json() const;

 private:
  Governor() = default;

  void escalate_to(Rung target, std::uint64_t projected, std::uint64_t budget);
  std::uint64_t run_reclaimers();
  void maybe_shrink(std::string_view tag);

  static inline std::atomic<bool> enabled_flag_{false};

  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> initial_total_{0};
  std::atomic<std::uint8_t> rung_{0};
  std::atomic<std::size_t> chunk_{4096};
  std::atomic<std::uint64_t> admits_{0};
  std::atomic<std::uint64_t> denials_{0};
  std::atomic<std::uint64_t> shrinks_{0};
  std::atomic<std::uint64_t> reclaims_{0};

  mutable std::mutex mutex_;  // escalation, reclaimers, caps, transitions
  std::vector<std::pair<std::string, std::uint64_t>> subsystem_caps_;
  std::vector<std::pair<const void*, std::function<std::uint64_t()>>> reclaimers_;
  std::vector<RungTransition> transitions_;
};

/// Binary-searches the smallest budget in [granularity, hi] for which
/// `feasible` holds, assuming feasibility is monotone in the budget. Returns
/// 0 when even `hi` is infeasible. `feasible` typically runs the full solve
/// under an installed budget and checks completion + partition parity +
/// peak <= budget (see bench/perf_profile.cpp and the CLI's
/// --probe-min-budget).
std::uint64_t min_feasible_budget(std::uint64_t hi,
                                  const std::function<bool(std::uint64_t)>& feasible,
                                  std::uint64_t granularity = 4096);

/// RAII install/uninstall for tests and probes (exception-safe).
class ScopedBudget {
 public:
  explicit ScopedBudget(BudgetConfig config) { Governor::global().install(std::move(config)); }
  ~ScopedBudget() { Governor::global().uninstall(); }
  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;
};

}  // namespace gala::governor
