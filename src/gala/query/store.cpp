#include "gala/query/store.hpp"

#include <algorithm>
#include <thread>

#include "gala/common/error.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/incremental.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::query {

namespace {

/// Modeled bytes live across every CommunityStore in the process — the
/// "query.snapshots" gauge is process-wide, like the registry it feeds.
std::atomic<std::uint64_t> g_snapshot_bytes{0};

std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

void SnapshotRef::release() {
  if (store_ != nullptr) {
    store_->release_slot(slot_, snap_);
    store_ = nullptr;
    snap_ = nullptr;
  }
}

CommunityStore::CommunityStore(StoreOptions options)
    : capacity_(next_pow2(std::max<std::size_t>(options.max_retained, 1))),
      mask_(capacity_ - 1),
      ring_(capacity_),
      hazards_(std::max<std::size_t>(options.reader_slots, 1)),
      max_retained_(std::clamp<std::size_t>(options.max_retained, 1, capacity_)) {
  for (auto& cell : ring_) cell.store(nullptr, std::memory_order_relaxed);
  governor_client_ = options.governor_client;
  if (governor_client_) {
    // Rung-1 ladder client: under pressure the governor asks the store to
    // shed history. Runs under the governor mutex, so: try-lock only (a
    // publisher may be mid-link and could itself be blocked inside a gauge
    // admission), and raw-registry gauge updates only (the admitting
    // wrapper would re-enter Governor::admit and self-deadlock).
    governor::Governor::global().register_reclaimer(this, [this]() -> std::uint64_t {
      std::unique_lock<std::mutex> lock(writer_mutex_, std::try_to_lock);
      if (!lock.owns_lock()) return 0;
      const std::uint64_t latest = latest_epoch_.load(std::memory_order_relaxed);
      if (latest != 0) {
        std::uint64_t oldest = oldest_epoch_.load(std::memory_order_relaxed);
        while (oldest < latest) {
          retire_cell_locked(oldest);
          ++oldest;
          evicted_.fetch_add(1, std::memory_order_relaxed);
        }
        oldest_epoch_.store(oldest, std::memory_order_release);
      }
      const std::uint64_t freed = reclaim_locked();
      update_residency(/*admitting=*/false);
      return freed;
    });
  }
}

CommunityStore::~CommunityStore() {
  if (governor_client_) governor::Governor::global().unregister_reclaimer(this);
  std::uint64_t live = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    for (auto& cell : ring_) cell.store(nullptr, std::memory_order_seq_cst);
    for (const auto& s : active_) live += s->bytes();
    for (const auto& s : retired_) live += s->bytes();
    active_.clear();
    retired_.clear();
    resident_bytes_.store(0, std::memory_order_relaxed);
    g_snapshot_bytes.fetch_sub(live, std::memory_order_relaxed);
  }
  update_residency(/*admitting=*/true);
}

std::uint64_t CommunityStore::publish(const graph::Graph& g, std::span<const cid_t> assignment,
                                      SnapshotSource source, wt_t resolution) {
  telemetry::ScopedSpan span(telemetry::Tracer::global(), "publish", "query");
  auto snap = std::unique_ptr<Snapshot>(new Snapshot());
  snap->build(g, assignment, source, resolution);
  const cid_t k = snap->num_communities();
  // Transient build scratch (internal-weight accumulator + CSR cursors):
  // one-shot modeled charge, outside the writer lock so an installed
  // governor can observe and escalate without any lock held here.
  memtrace::charge("query.publish_scratch",
                   static_cast<std::uint64_t>(k) * sizeof(wt_t) +
                       (static_cast<std::uint64_t>(k) + 1) * sizeof(eid_t));
  span.arg("communities", k);
  span.arg("bytes", static_cast<double>(snap->bytes()));
  const std::uint64_t e = link_and_evict(std::move(snap));
  span.arg("epoch", static_cast<double>(e));
  telemetry::Registry::global().counter("query.epochs_published").add(1);
  return e;
}

std::uint64_t CommunityStore::publish(const graph::Graph& g, const core::GalaResult& result,
                                      wt_t resolution) {
  return publish(g, result.assignment, SnapshotSource::FullRun, resolution);
}

std::uint64_t CommunityStore::publish(const core::IncrementalResult& result, wt_t resolution) {
  return publish(result.graph, result.assignment, SnapshotSource::IncrementalUpdate, resolution);
}

std::uint64_t CommunityStore::link_and_evict(std::unique_ptr<Snapshot> snap) {
  std::uint64_t epoch = 0;
  std::uint64_t newly_evicted = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    epoch = latest_epoch_.load(std::memory_order_relaxed) + 1;
    snap->epoch_ = epoch;
    snap->epoch_footer_ = epoch;
    // The target cell can only still be occupied by epoch - capacity when
    // retention was just widened; retire it rather than orphan it.
    if (epoch > capacity_) retire_cell_locked(epoch - capacity_);
    resident_bytes_.fetch_add(snap->bytes(), std::memory_order_relaxed);
    g_snapshot_bytes.fetch_add(snap->bytes(), std::memory_order_relaxed);
    ring_[epoch & mask_].store(snap.get(), std::memory_order_seq_cst);
    active_.push_back(std::move(snap));
    latest_epoch_.store(epoch, std::memory_order_release);
    std::uint64_t oldest = oldest_epoch_.load(std::memory_order_relaxed);
    if (oldest == 0) oldest = epoch;
    const std::size_t keep = effective_max_retained();
    while (epoch - oldest + 1 > keep) {
      retire_cell_locked(oldest);
      ++oldest;
      ++newly_evicted;
    }
    oldest_epoch_.store(oldest, std::memory_order_release);
    if (newly_evicted != 0) evicted_.fetch_add(newly_evicted, std::memory_order_relaxed);
    published_.fetch_add(1, std::memory_order_relaxed);
    reclaim_locked();
  }
  update_residency(/*admitting=*/true);
  if (newly_evicted != 0) {
    telemetry::Registry::global().counter("query.epochs_evicted").add(newly_evicted);
  }
  return epoch;
}

void CommunityStore::retire_cell_locked(std::uint64_t epoch) {
  if (epoch == 0) return;
  auto& cell = ring_[epoch & mask_];
  const Snapshot* s = cell.load(std::memory_order_relaxed);
  if (s == nullptr || s->epoch() != epoch) return;
  // seq_cst: ordered against reader hazard publication — any reader that
  // re-validated the cell after this store either sees nullptr (and
  // retries) or its hazard is visible to the reclaim scan below.
  cell.store(nullptr, std::memory_order_seq_cst);
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->get() == s) {
      retired_.push_back(std::move(*it));
      active_.erase(it);
      break;
    }
  }
}

std::uint64_t CommunityStore::reclaim_locked() {
  std::uint64_t freed = 0;
  std::uint64_t count = 0;
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (pinned(it->get())) {
      ++it;
      continue;
    }
    freed += (*it)->bytes();
    ++count;
    it = retired_.erase(it);
  }
  if (freed != 0) {
    resident_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    g_snapshot_bytes.fetch_sub(freed, std::memory_order_relaxed);
  }
  if (count != 0) {
    reclaimed_.fetch_add(count, std::memory_order_relaxed);
    telemetry::Registry::global().counter("query.snapshots_reclaimed").add(count);
  }
  return freed;
}

std::uint64_t CommunityStore::reclaim() {
  std::uint64_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    freed = reclaim_locked();
  }
  update_residency(/*admitting=*/true);
  return freed;
}

bool CommunityStore::pinned(const Snapshot* snap) const {
  for (const HazardSlot& h : hazards_) {
    if (h.ptr.load(std::memory_order_seq_cst) == snap) return true;
  }
  return false;
}

std::size_t CommunityStore::claim_slot() const {
  thread_local std::size_t hint = 0;
  const std::size_t n = hazards_.size();
  for (;;) {
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (hint + probe) % n;
      bool expected = false;
      if (hazards_[i].claimed.compare_exchange_strong(expected, true,
                                                      std::memory_order_acquire)) {
        hint = (i + 1) % n;
        return i;
      }
    }
    std::this_thread::yield();
  }
}

void CommunityStore::release_slot(std::size_t slot, const Snapshot* /*snap*/) const {
  hazards_[slot].ptr.store(nullptr, std::memory_order_release);
  hazards_[slot].claimed.store(false, std::memory_order_release);
}

SnapshotRef CommunityStore::pin(std::uint64_t epoch) const {
  if (epoch == 0) return {};
  const std::atomic<const Snapshot*>& cell = ring_[epoch & mask_];
  if (cell.load(std::memory_order_acquire) == nullptr) return {};
  const std::size_t slot = claim_slot();
  HazardSlot& h = hazards_[slot];
  for (;;) {
    const Snapshot* s = cell.load(std::memory_order_acquire);
    if (s == nullptr) break;
    h.ptr.store(s, std::memory_order_seq_cst);
    if (cell.load(std::memory_order_seq_cst) != s) {
      // The writer replaced or retired the cell between our load and the
      // hazard publication; the pin is not safe — retry.
      h.ptr.store(nullptr, std::memory_order_seq_cst);
      continue;
    }
    // Pinned: the snapshot at this address cannot be reclaimed while the
    // hazard holds it, so dereferencing is safe from here on.
    if (s->epoch() != epoch) {
      h.ptr.store(nullptr, std::memory_order_seq_cst);
      break;
    }
    return SnapshotRef(this, slot, s);
  }
  h.claimed.store(false, std::memory_order_release);
  return {};
}

SnapshotRef CommunityStore::current() const {
  for (;;) {
    const std::uint64_t e = latest_epoch_.load(std::memory_order_acquire);
    if (e == 0) return {};
    if (SnapshotRef ref = pin(e)) return ref;
    // The writer advanced past e before we pinned it; chase the new head.
  }
}

SnapshotRef CommunityStore::at(std::uint64_t epoch) const { return pin(epoch); }

std::size_t CommunityStore::retained() const {
  const std::uint64_t latest = latest_epoch_.load(std::memory_order_acquire);
  if (latest == 0) return 0;
  return static_cast<std::size_t>(latest - oldest_epoch_.load(std::memory_order_acquire) + 1);
}

void CommunityStore::set_max_retained(std::size_t n) {
  max_retained_.store(std::clamp<std::size_t>(n, 1, capacity_), std::memory_order_relaxed);
}

std::size_t CommunityStore::live_snapshots() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return active_.size() + retired_.size();
}

std::size_t CommunityStore::effective_max_retained() const {
  if (governor::Governor::enabled() &&
      governor::Governor::global().rung() >= governor::Rung::ReclaimSlabs) {
    return 1;
  }
  return max_retained_.load(std::memory_order_relaxed);
}

void CommunityStore::update_residency(bool admitting) const {
  if (admitting) {
    // The admitting wrapper can escalate the governor, whose reclaimer
    // evicts history and rewrites the gauge mid-call — re-check the total
    // afterwards so a stale (pre-eviction) value never sticks.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t total = g_snapshot_bytes.load(std::memory_order_relaxed);
      memtrace::set_resident("query.snapshots", total);
      if (g_snapshot_bytes.load(std::memory_order_relaxed) == total) break;
    }
  } else if (memtrace::MemRegistry::armed()) {
    memtrace::MemRegistry::global().set_resident(
        "query.snapshots", g_snapshot_bytes.load(std::memory_order_relaxed));
  }
}

}  // namespace gala::query
