// gala::query — the epoch-versioned community snapshot store.
//
// CommunityStore is the seam between the engine (writers: run_louvain,
// update_communities, or any raw assignment) and the serving read path.
// Each publish freezes an immutable Snapshot and links it into a fixed ring
// of atomic epoch slots; an atomic latest-epoch counter advances last, so a
// new epoch becomes visible only once fully built.
//
// Reader protocol (lock-free, hazard-pointer validated):
//   1. claim a hazard slot (CAS on a free slot — lock-free, no mutex)
//   2. load the ring cell for the wanted epoch (acquire)
//   3. publish the pointer into the hazard slot (seq_cst)
//   4. re-load the ring cell (seq_cst); if it still holds the same snapshot
//      the pin is safe — the writer's retire scan is ordered after the cell
//      overwrite, so it must observe this hazard. If the cell changed, retry.
// SnapshotRef releases the hazard slot on destruction. Readers never take a
// lock and never block a writer; writers never block readers.
//
// Writer protocol (serialised by writer_mutex_):
//   build the snapshot outside the lock, then under it: stamp the next
//   epoch, retire whatever the target ring cell held, link, advance
//   latest_epoch_, evict epochs beyond the retention window, and sweep the
//   retired list against the hazard slots — a retired snapshot is deleted
//   only when no reader pins it (RCU-style deferred reclamation).
//
// Residency accounting: live snapshot bytes (retained + retired-but-pinned)
// are a memtrace set_resident gauge under "query.snapshots" — a gauge, not
// on_alloc/on_free, because snapshots legitimately outlive engine level
// resets and must not trip the leak detector. The gauge is updated outside
// writer_mutex_ through the admitting wrapper, so an installed governor
// sees snapshot residency and can push back.
//
// Governor integration: the store registers a rung-1 reclaimer that evicts
// every retained epoch but the newest and frees drained retirees. The
// reclaimer runs under the governor mutex, so it (a) try-locks
// writer_mutex_ and yields if a publish is in flight, and (b) updates the
// residency gauge through the raw registry — never the admitting wrapper,
// which would re-enter Governor::admit and self-deadlock. Publishers also
// consult the ladder directly: at rung >= ReclaimSlabs the effective
// retention collapses to a single epoch until the budget is uninstalled.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gala/query/snapshot.hpp"

namespace gala::core {
struct GalaResult;
struct IncrementalResult;
}  // namespace gala::core

namespace gala::query {

class CommunityStore;

/// RAII pin on one published snapshot. Holding a ref keeps the snapshot
/// alive (the store defers reclamation) without blocking any writer. Empty
/// refs (default-constructed, or a miss on an evicted epoch) are falsy.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  ~SnapshotRef() { release(); }
  SnapshotRef(SnapshotRef&& other) noexcept
      : store_(other.store_), slot_(other.slot_), snap_(other.snap_) {
    other.store_ = nullptr;
    other.snap_ = nullptr;
  }
  SnapshotRef& operator=(SnapshotRef&& other) noexcept {
    if (this != &other) {
      release();
      store_ = other.store_;
      slot_ = other.slot_;
      snap_ = other.snap_;
      other.store_ = nullptr;
      other.snap_ = nullptr;
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  explicit operator bool() const { return snap_ != nullptr; }
  const Snapshot& operator*() const { return *snap_; }
  const Snapshot* operator->() const { return snap_; }
  const Snapshot* get() const { return snap_; }

  void release();

 private:
  friend class CommunityStore;
  SnapshotRef(const CommunityStore* store, std::size_t slot, const Snapshot* snap)
      : store_(store), slot_(slot), snap_(snap) {}

  const CommunityStore* store_ = nullptr;
  std::size_t slot_ = 0;
  const Snapshot* snap_ = nullptr;
};

struct StoreOptions {
  /// Epochs kept addressable through at(); older ones are evicted on
  /// publish. Clamped to [1, ring capacity].
  std::size_t max_retained = 8;
  /// Concurrent pinned snapshots (hazard slots). Acquire spins when all are
  /// claimed, so size for peak reader concurrency; 64 covers the stress
  /// battery's 8 readers with an order of magnitude to spare.
  std::size_t reader_slots = 64;
  /// Registers the rung-1 governor reclaimer (oldest-epoch eviction).
  bool governor_client = true;
};

/// Epoch-versioned snapshot store: single- or multi-writer (publishes are
/// serialised), any number of lock-free readers.
class CommunityStore {
 public:
  explicit CommunityStore(StoreOptions options = {});
  /// All SnapshotRefs must be released before destruction (asserted).
  ~CommunityStore();
  CommunityStore(const CommunityStore&) = delete;
  CommunityStore& operator=(const CommunityStore&) = delete;

  /// Publishes a raw assignment over `g` as the next epoch. Returns the
  /// epoch number (the snapshot itself is reached through current()/at(),
  /// which pin it safely).
  std::uint64_t publish(const graph::Graph& g, std::span<const cid_t> assignment,
                        SnapshotSource source = SnapshotSource::Direct, wt_t resolution = 1.0);
  /// Publishes a completed run_louvain result.
  std::uint64_t publish(const graph::Graph& g, const core::GalaResult& result,
                        wt_t resolution = 1.0);
  /// Publishes an update_communities repair batch (uses the updated graph
  /// the repair produced).
  std::uint64_t publish(const core::IncrementalResult& result, wt_t resolution = 1.0);

  /// Pins the newest epoch; empty before the first publish.
  SnapshotRef current() const;
  /// Pins a specific epoch; empty if never published or already evicted.
  SnapshotRef at(std::uint64_t epoch) const;

  std::uint64_t latest_epoch() const { return latest_epoch_.load(std::memory_order_acquire); }
  std::uint64_t oldest_epoch() const { return oldest_epoch_.load(std::memory_order_acquire); }
  /// Epochs currently addressable via at().
  std::size_t retained() const;
  std::size_t max_retained() const { return max_retained_.load(std::memory_order_relaxed); }
  void set_max_retained(std::size_t n);

  /// Snapshots alive on the heap: retained + retired-awaiting-readers.
  std::size_t live_snapshots() const;
  /// Modeled bytes across live snapshots (the "query.snapshots" gauge).
  std::uint64_t resident_bytes() const { return resident_bytes_.load(std::memory_order_relaxed); }

  std::uint64_t published() const { return published_.load(std::memory_order_relaxed); }
  std::uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }
  std::uint64_t reclaimed() const { return reclaimed_.load(std::memory_order_relaxed); }

  /// Sweeps the retired list, deleting snapshots no reader pins. Publish
  /// does this automatically; call directly to drain after readers exit.
  /// Returns modeled bytes freed.
  std::uint64_t reclaim();

 private:
  friend class SnapshotRef;

  struct alignas(64) HazardSlot {
    std::atomic<bool> claimed{false};
    std::atomic<const Snapshot*> ptr{nullptr};
  };

  std::size_t claim_slot() const;
  void release_slot(std::size_t slot, const Snapshot* snap) const;
  SnapshotRef pin(std::uint64_t epoch) const;
  bool pinned(const Snapshot* snap) const;

  std::uint64_t link_and_evict(std::unique_ptr<Snapshot> snap);
  /// Caller holds writer_mutex_. Returns modeled bytes freed.
  std::uint64_t reclaim_locked();
  /// Caller holds writer_mutex_. Moves the ring cell for `epoch` (if any)
  /// onto the retired list.
  void retire_cell_locked(std::uint64_t epoch);
  std::size_t effective_max_retained() const;
  /// Recomputes the residency gauge; `admitting` selects the governor-aware
  /// wrapper (publish path) vs the raw registry (reclaimer path).
  void update_residency(bool admitting) const;

  const std::size_t capacity_;  // power of two
  const std::size_t mask_;
  std::vector<std::atomic<const Snapshot*>> ring_;
  mutable std::vector<HazardSlot> hazards_;

  std::atomic<std::uint64_t> latest_epoch_{0};
  std::atomic<std::uint64_t> oldest_epoch_{0};
  std::atomic<std::size_t> max_retained_;
  std::atomic<std::uint64_t> resident_bytes_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> reclaimed_{0};

  mutable std::mutex writer_mutex_;
  // Both guarded by writer_mutex_: ring-linked snapshots, then snapshots
  // unlinked from the ring but possibly still pinned by a reader.
  std::vector<std::unique_ptr<Snapshot>> active_;
  std::vector<std::unique_ptr<Snapshot>> retired_;
  bool governor_client_ = false;
};

}  // namespace gala::query
