#include "gala/query/executor.hpp"

#include <algorithm>
#include <unordered_map>

#include "gala/common/error.hpp"
#include "gala/common/thread_pool.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::query {

namespace {

/// Shards [0, n) across the pool in deterministic contiguous chunks; bodies
/// write only their own output indices, so results are order-stable.
void for_batch(ThreadPool& pool, std::size_t n, std::size_t grain,
               const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (n <= grain) {
    body(0, n);
    return;
  }
  pool.parallel_for_chunked(0, n, body, grain);
}

}  // namespace

QueryExecutor::QueryExecutor(const CommunityStore& store, ThreadPool* pool, std::size_t grain)
    : store_(&store), pool_(pool != nullptr ? pool : &ThreadPool::global()),
      grain_(std::max<std::size_t>(grain, 1)) {}

cid_t QueryExecutor::community_of(vid_t v) const {
  SnapshotRef snap = store_->current();
  GALA_CHECK(snap, "query on an empty store (no epoch published yet)");
  GALA_CHECK(v < snap->num_vertices(),
             "vertex " << v << " out of range for epoch " << snap->epoch() << " ("
                       << snap->num_vertices() << " vertices)");
  telemetry::Registry::global().counter("query.point_lookups").add(1);
  return snap->community_of(v);
}

std::vector<cid_t> QueryExecutor::community_of(const Snapshot& snap,
                                               std::span<const vid_t> vertices) const {
  telemetry::ScopedSpan span(telemetry::Tracer::global(), "batch_community_of", "query");
  span.arg("ops", static_cast<double>(vertices.size()));
  const vid_t n = snap.num_vertices();
  std::vector<cid_t> out(vertices.size());
  for_batch(*pool_, vertices.size(), grain_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      GALA_CHECK(vertices[i] < n, "vertex " << vertices[i] << " out of range for epoch "
                                            << snap.epoch() << " (" << n << " vertices)");
      out[i] = snap.community_of(vertices[i]);
    }
  });
  telemetry::Registry::global().counter("query.batch_lookups").add(vertices.size());
  return out;
}

std::vector<vid_t> QueryExecutor::community_size_of(const Snapshot& snap,
                                                    std::span<const vid_t> vertices) const {
  const vid_t n = snap.num_vertices();
  std::vector<vid_t> out(vertices.size());
  for_batch(*pool_, vertices.size(), grain_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      GALA_CHECK(vertices[i] < n, "vertex " << vertices[i] << " out of range for epoch "
                                            << snap.epoch() << " (" << n << " vertices)");
      out[i] = snap.size(snap.community_of(vertices[i]));
    }
  });
  telemetry::Registry::global().counter("query.batch_lookups").add(vertices.size());
  return out;
}

std::vector<vid_t> QueryExecutor::members(const Snapshot& snap, cid_t c) const {
  GALA_CHECK(c < snap.num_communities(), "community " << c << " out of range for epoch "
                                                      << snap.epoch() << " ("
                                                      << snap.num_communities() << " communities)");
  auto row = snap.members(c);
  telemetry::Registry::global().counter("query.member_scans").add(1);
  return std::vector<vid_t>(row.begin(), row.end());
}

std::vector<TopCommunity> QueryExecutor::top_k(const Snapshot& snap, std::size_t k) const {
  const auto order = snap.by_size();
  k = std::min<std::size_t>(k, order.size());
  std::vector<TopCommunity> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const cid_t c = order[i];
    out.push_back({c, snap.size(c), snap.weight(c), snap.modularity_of(c)});
  }
  telemetry::Registry::global().counter("query.top_k").add(1);
  return out;
}

EpochDiff QueryExecutor::diff(const Snapshot& from, const Snapshot& to) const {
  telemetry::ScopedSpan span(telemetry::Tracer::global(), "epoch_diff", "query");
  const vid_t n = from.num_vertices();
  GALA_CHECK(n == to.num_vertices(), "epoch diff across different vertex sets: epoch "
                                         << from.epoch() << " has " << n << " vertices, epoch "
                                         << to.epoch() << " has " << to.num_vertices());
  EpochDiff result;
  result.from_epoch = from.epoch();
  result.to_epoch = to.epoch();

  // pair_count[(c_from, c_to)] = vertices that landed in exactly that label
  // pair. A vertex is unmoved iff its pair covers both of its communities
  // completely — membership sets equal, independent of labels.
  std::unordered_map<std::uint64_t, vid_t> pair_count;
  pair_count.reserve(std::max<std::size_t>(from.num_communities(), to.num_communities()) * 2);
  const auto key = [&](vid_t v) {
    return (static_cast<std::uint64_t>(from.community_of(v)) << 32) |
           static_cast<std::uint64_t>(to.community_of(v));
  };
  for (vid_t v = 0; v < n; ++v) ++pair_count[key(v)];

  const std::size_t chunks = (n + grain_ - 1) / std::max<std::size_t>(grain_, 1);
  std::vector<std::vector<vid_t>> moved_per_chunk(std::max<std::size_t>(chunks, 1));
  for_batch(*pool_, n, grain_, [&](std::size_t lo, std::size_t hi) {
    std::vector<vid_t>& local = moved_per_chunk[lo / grain_];
    for (std::size_t i = lo; i < hi; ++i) {
      const vid_t v = static_cast<vid_t>(i);
      const vid_t pair = pair_count.find(key(v))->second;
      if (pair != from.size(from.community_of(v)) || pair != to.size(to.community_of(v))) {
        local.push_back(v);
      }
    }
  });
  for (const auto& chunk : moved_per_chunk) {
    result.moved.insert(result.moved.end(), chunk.begin(), chunk.end());
  }
  span.arg("moved", static_cast<double>(result.moved.size()));
  telemetry::Registry::global().counter("query.epoch_diffs").add(1);
  return result;
}

EpochDiff QueryExecutor::diff(std::uint64_t from_epoch, std::uint64_t to_epoch) const {
  SnapshotRef from = store_->at(from_epoch);
  GALA_CHECK(from, "epoch " << from_epoch << " is not retained (evicted or never published)");
  SnapshotRef to = store_->at(to_epoch);
  GALA_CHECK(to, "epoch " << to_epoch << " is not retained (evicted or never published)");
  return diff(*from, *to);
}

}  // namespace gala::query
