// gala::query — immutable, epoch-stamped community snapshots.
//
// A Snapshot freezes one completed partition (a `run_louvain` result, an
// `update_communities` repair, or a raw assignment) into a read-optimised,
// fully immutable document: the canonical dense assignment, per-community
// size / weighted-degree / modularity-contribution arrays, a CSR member
// index built once at publish, and a size-descending community order for
// O(k) top-k answers. Readers hold Snapshots through CommunityStore's
// lock-free epoch ring (store.hpp); nothing in this class mutates after
// `CommunityStore::publish` links it, so concurrent reads need no
// synchronisation at all.
//
// Torn-epoch detection: every snapshot carries redundant derived state
// (member CSR vs sizes vs assignment, per-community Q terms vs the global
// Q it was published with, and an epoch footer written last). validate()
// cross-checks all of it; the TSan stress battery calls it from reader
// threads to prove that no reader can ever observe a half-published epoch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::query {

/// Which writer produced the partition this snapshot froze.
enum class SnapshotSource : std::uint8_t {
  Direct = 0,             ///< raw assignment handed straight to publish()
  FullRun = 1,            ///< a completed core::run_louvain
  IncrementalUpdate = 2,  ///< a core::update_communities repair batch
};

const char* to_string(SnapshotSource source);

class CommunityStore;

/// One immutable published partition. Construct via CommunityStore::publish.
class Snapshot {
 public:
  std::uint64_t epoch() const { return epoch_; }
  SnapshotSource source() const { return source_; }
  vid_t num_vertices() const { return static_cast<vid_t>(assignment_.size()); }
  cid_t num_communities() const { return num_communities_; }
  /// Global modularity of the partition (gamma as passed to publish), equal
  /// to the sum of modularity_of() over all communities by construction.
  wt_t modularity() const { return modularity_; }
  wt_t resolution() const { return resolution_; }

  /// Canonical dense assignment: first-appearance renumbering of whatever id
  /// space the writer produced, so bit-identical partitions publish
  /// bit-identical assignments regardless of label permutations.
  std::span<const cid_t> assignment() const { return assignment_; }
  cid_t community_of(vid_t v) const { return assignment_[v]; }

  vid_t size(cid_t c) const { return comm_size_[c]; }
  /// D_V(C): sum of member weighted degrees (the modularity denominator term).
  wt_t weight(cid_t c) const { return comm_weight_[c]; }
  /// This community's contribution to modularity():
  /// internal/2m − gamma·(total/2m)².
  wt_t modularity_of(cid_t c) const { return comm_modularity_[c]; }

  /// Members of community c, ascending vertex ids (CSR index, zero copies).
  std::span<const vid_t> members(cid_t c) const {
    return std::span<const vid_t>(members_.data() + member_offsets_[c],
                                  member_offsets_[c + 1] - member_offsets_[c]);
  }

  /// All community ids ordered by (size descending, id ascending) — the
  /// top-k order, precomputed at publish.
  std::span<const cid_t> by_size() const { return by_size_; }

  /// Modeled resident bytes (element counts, never vector capacities) — the
  /// memtrace "query.snapshots" gauge charge for this snapshot.
  std::uint64_t bytes() const { return bytes_; }

  /// True when the same partition of the same vertex set: canonical
  /// assignments compare equal (epoch/source are publication metadata and
  /// deliberately excluded).
  bool same_partition(const Snapshot& other) const {
    return assignment_ == other.assignment_;
  }

  /// Cross-checks every piece of redundant derived state; returns the empty
  /// string when internally consistent, else a description of the first
  /// violation. Reader threads in the stress battery call this to detect
  /// torn epochs.
  std::string validate() const;

 private:
  friend class CommunityStore;

  Snapshot() = default;

  /// Builds every derived index from a raw assignment. `epoch_` is assigned
  /// later, under the store's writer lock, before the snapshot is linked.
  void build(const graph::Graph& g, std::span<const cid_t> raw, SnapshotSource source,
             wt_t resolution);

  std::uint64_t epoch_ = 0;
  SnapshotSource source_ = SnapshotSource::Direct;
  cid_t num_communities_ = 0;
  wt_t modularity_ = 0;
  wt_t resolution_ = 1.0;
  std::vector<cid_t> assignment_;
  std::vector<vid_t> comm_size_;
  std::vector<wt_t> comm_weight_;
  std::vector<wt_t> comm_modularity_;
  std::vector<eid_t> member_offsets_;  ///< size k+1
  std::vector<vid_t> members_;         ///< size n, grouped by community
  std::vector<cid_t> by_size_;
  std::uint64_t bytes_ = 0;
  /// Written last by build(); validate() checks it against epoch_ after the
  /// store stamps both. A reader that could see a partially-built snapshot
  /// would trip here first.
  std::uint64_t epoch_footer_ = 0;
};

}  // namespace gala::query
