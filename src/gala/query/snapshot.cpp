#include "gala/query/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "gala/common/error.hpp"
#include "gala/core/modularity.hpp"

namespace gala::query {

const char* to_string(SnapshotSource source) {
  switch (source) {
    case SnapshotSource::Direct: return "direct";
    case SnapshotSource::FullRun: return "full_run";
    case SnapshotSource::IncrementalUpdate: return "incremental_update";
  }
  return "?";
}

void Snapshot::build(const graph::Graph& g, std::span<const cid_t> raw, SnapshotSource source,
                     wt_t resolution) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(raw.size() == n, "snapshot assignment size mismatch: " << raw.size() << " vs " << n
                                                                    << " vertices");
  source_ = source;
  resolution_ = resolution;

  assignment_.assign(raw.begin(), raw.end());
  const vid_t k = core::renumber_communities(assignment_);
  num_communities_ = k;

  comm_size_.assign(k, 0);
  comm_weight_.assign(k, 0);
  std::vector<wt_t> internal(k, 0);  // intra edges twice + self loops twice
  for (vid_t v = 0; v < n; ++v) {
    const cid_t c = assignment_[v];
    ++comm_size_[c];
    comm_weight_[c] += g.degree(v);
    internal[c] += 2 * g.self_loop(v);
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] != v && assignment_[nbrs[i]] == c) internal[c] += ws[i];
    }
  }

  comm_modularity_.assign(k, 0);
  modularity_ = 0;
  if (g.total_weight() > 0) {
    const wt_t two_m = g.two_m();
    for (cid_t c = 0; c < k; ++c) {
      comm_modularity_[c] =
          internal[c] / two_m - resolution * (comm_weight_[c] / two_m) * (comm_weight_[c] / two_m);
      modularity_ += comm_modularity_[c];
    }
  }

  // Member CSR by counting sort: vertices ascend within each community.
  member_offsets_.assign(k + 1, 0);
  for (vid_t v = 0; v < n; ++v) ++member_offsets_[assignment_[v] + 1];
  for (cid_t c = 0; c < k; ++c) member_offsets_[c + 1] += member_offsets_[c];
  members_.resize(n);
  {
    std::vector<eid_t> cursor(member_offsets_.begin(), member_offsets_.end() - 1);
    for (vid_t v = 0; v < n; ++v) members_[cursor[assignment_[v]]++] = v;
  }

  by_size_.resize(k);
  std::iota(by_size_.begin(), by_size_.end(), 0);
  std::sort(by_size_.begin(), by_size_.end(), [this](cid_t a, cid_t b) {
    if (comm_size_[a] != comm_size_[b]) return comm_size_[a] > comm_size_[b];
    return a < b;
  });

  bytes_ = static_cast<std::uint64_t>(assignment_.size()) * sizeof(cid_t) +
           static_cast<std::uint64_t>(comm_size_.size()) * sizeof(vid_t) +
           static_cast<std::uint64_t>(comm_weight_.size()) * sizeof(wt_t) +
           static_cast<std::uint64_t>(comm_modularity_.size()) * sizeof(wt_t) +
           static_cast<std::uint64_t>(member_offsets_.size()) * sizeof(eid_t) +
           static_cast<std::uint64_t>(members_.size()) * sizeof(vid_t) +
           static_cast<std::uint64_t>(by_size_.size()) * sizeof(cid_t);
}

std::string Snapshot::validate() const {
  const auto fail = [](auto&&... parts) {
    std::ostringstream out;
    (out << ... << parts);
    return out.str();
  };
  if (epoch_footer_ != epoch_) {
    return fail("epoch footer ", epoch_footer_, " != epoch ", epoch_);
  }
  const vid_t n = num_vertices();
  const cid_t k = num_communities_;
  if (comm_size_.size() != k || comm_weight_.size() != k || comm_modularity_.size() != k ||
      by_size_.size() != k || member_offsets_.size() != static_cast<std::size_t>(k) + 1 ||
      members_.size() != n) {
    return fail("epoch ", epoch_, ": derived array sizes disagree with k=", k, " n=", n);
  }
  if (member_offsets_[0] != 0 || member_offsets_[k] != n) {
    return fail("epoch ", epoch_, ": member offsets do not span [0, ", n, ")");
  }
  std::uint64_t total = 0;
  for (cid_t c = 0; c < k; ++c) {
    const eid_t lo = member_offsets_[c];
    const eid_t hi = member_offsets_[c + 1];
    if (hi < lo) return fail("epoch ", epoch_, ": member offsets not monotone at c=", c);
    if (hi - lo != comm_size_[c]) {
      return fail("epoch ", epoch_, ": community ", c, " CSR extent ", hi - lo, " != size ",
                  comm_size_[c]);
    }
    total += comm_size_[c];
    for (eid_t i = lo; i < hi; ++i) {
      const vid_t v = members_[i];
      if (v >= n || assignment_[v] != c) {
        return fail("epoch ", epoch_, ": member table lists v=", v, " under c=", c);
      }
      if (i > lo && members_[i - 1] >= v) {
        return fail("epoch ", epoch_, ": members of c=", c, " not ascending");
      }
    }
  }
  if (total != n) return fail("epoch ", epoch_, ": community sizes sum ", total, " != ", n);
  for (vid_t v = 0; v < n; ++v) {
    if (assignment_[v] >= k) return fail("epoch ", epoch_, ": assignment[", v, "] out of range");
  }
  wt_t q = 0;
  for (cid_t c = 0; c < k; ++c) q += comm_modularity_[c];
  // Same summation order as build(), so bit-equality is the contract.
  if (q != modularity_) {
    return fail("epoch ", epoch_, ": per-community Q sums to ", q, " != published ", modularity_);
  }
  for (cid_t i = 1; i < k; ++i) {
    const cid_t a = by_size_[i - 1];
    const cid_t b = by_size_[i];
    if (comm_size_[a] < comm_size_[b] || (comm_size_[a] == comm_size_[b] && a >= b)) {
      return fail("epoch ", epoch_, ": by_size order violated at position ", i);
    }
  }
  return {};
}

}  // namespace gala::query
