// gala::query — batched query execution over pinned snapshots.
//
// The executor is the serving layer's compute half: point lookups read a
// pinned Snapshot directly; batched forms shard the batch across
// common/thread_pool workers (contiguous chunks, deterministic output
// order — answers land at the index of their query regardless of worker
// scheduling). Cross-epoch diff uses label-pair counting, so it is
// invariant under community relabelling: a vertex is "moved" iff the set
// of vertices sharing its community changed between the two epochs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gala/query/store.hpp"

namespace gala {
class ThreadPool;
}

namespace gala::query {

/// One top-k entry: a community and its published aggregates.
struct TopCommunity {
  cid_t community = 0;
  vid_t size = 0;
  wt_t weight = 0;
  wt_t modularity = 0;
};

/// Vertices whose community membership-set changed between two epochs.
struct EpochDiff {
  std::uint64_t from_epoch = 0;
  std::uint64_t to_epoch = 0;
  std::vector<vid_t> moved;  ///< ascending vertex ids
};

class QueryExecutor {
 public:
  /// `pool` defaults to the process-wide pool; `grain` is the minimum batch
  /// shard per worker (small batches run inline).
  explicit QueryExecutor(const CommunityStore& store,
                         ThreadPool* pool = nullptr, std::size_t grain = 2048);

  const CommunityStore& store() const { return *store_; }

  /// Point lookup against the newest epoch. Throws gala::Error on an empty
  /// store or out-of-range vertex.
  cid_t community_of(vid_t v) const;

  /// Batched lookups over an explicitly pinned snapshot; out[i] answers
  /// vertices[i].
  std::vector<cid_t> community_of(const Snapshot& snap, std::span<const vid_t> vertices) const;
  /// out[i] = size of the community of vertices[i].
  std::vector<vid_t> community_size_of(const Snapshot& snap,
                                       std::span<const vid_t> vertices) const;
  /// Members of community c (copy of the snapshot's CSR row).
  std::vector<vid_t> members(const Snapshot& snap, cid_t c) const;
  /// The k largest communities (size desc, id asc); k clamps to the count.
  std::vector<TopCommunity> top_k(const Snapshot& snap, std::size_t k) const;

  /// Which vertices moved between two epochs of the same vertex set.
  /// Label-invariant: relabelling that preserves the partition yields an
  /// empty diff. Throws gala::Error when vertex counts differ.
  EpochDiff diff(const Snapshot& from, const Snapshot& to) const;
  /// Convenience: pins both epochs in the store; throws if either is gone.
  EpochDiff diff(std::uint64_t from_epoch, std::uint64_t to_epoch) const;

 private:
  const CommunityStore* store_;
  ThreadPool* pool_;
  std::size_t grain_;
};

}  // namespace gala::query
