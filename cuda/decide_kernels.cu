// Experimental CUDA implementation of GALA's DecideAndMove kernels.
//
// These mirror the tested simulator twins in src/gala/core/kernels.cpp
// one-to-one; consult that file (and the paper's Algorithms 2-3) for the
// algorithmic commentary. Requires sm_70+ (__match_any_sync and the
// __reduce_*_sync cooperative-groups reductions).
#include <cuda_runtime.h>

#include "decide_kernels.cuh"

namespace gala::cuda {
namespace {

constexpr int kWarpSize = 32;
constexpr unsigned kFullMask = 0xffffffffu;

__device__ __forceinline__ std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

__device__ __forceinline__ wt_t move_score(wt_t e_vc, wt_t total, wt_t degree_v, wt_t two_m,
                                           bool in_community, wt_t resolution) {
  const wt_t t = in_community ? total - degree_v : total;
  return e_vc - resolution * t * degree_v / two_m;
}

// ---------------------------------------------------------------------------
// Algorithm 2: warp-per-vertex shuffle kernel, degree <= 32.
// ---------------------------------------------------------------------------
__global__ void shuffle_decide_kernel(DeviceDecideInput in, const vid_t* vertex_list,
                                      vid_t list_size, DeviceDecision* decisions) {
  const int lane = threadIdx.x % kWarpSize;
  const int warp_in_grid = (blockIdx.x * blockDim.x + threadIdx.x) / kWarpSize;
  const int warps_total = (gridDim.x * blockDim.x) / kWarpSize;

  for (vid_t idx = warp_in_grid; idx < list_size; idx += warps_total) {
    const vid_t v = vertex_list[idx];
    const eid_t begin = in.offsets[v];
    const int deg = static_cast<int>(in.offsets[v + 1] - begin);
    const cid_t curr = in.comm[v];
    const wt_t dv = in.degree[v];

    // Lane i owns the i-th neighbour (Alg. 2 lines 2-4).
    cid_t my_c = kInvalidCid;
    wt_t my_w = 0;
    bool active = lane < deg;
    if (active) {
      const vid_t u = in.adjacency[begin + lane];
      if (u == v) {
        active = false;  // self-loops cancel out of every comparison
      } else {
        my_c = in.comm[u];
        my_w = in.weights[begin + lane];
      }
    }
    const unsigned active_mask = __ballot_sync(kFullMask, active);

    wt_t e_curr = 0;
    wt_t my_dq = -1e300;
    if (active) {
      // Lines 5-6: group lanes by community, sum weights per group.
      const unsigned group = __match_any_sync(active_mask, my_c);
      wt_t sum = my_w;
      // Segmented reduction within the group mask (leader accumulates via
      // shfl; every lane converges to the group sum).
      for (int offset = kWarpSize / 2; offset > 0; offset /= 2) {
        const wt_t other = __shfl_xor_sync(kFullMask, sum, offset);
        const int other_lane = lane ^ offset;
        if ((group >> other_lane) & 1u) sum += other;
      }
      // Line 7: score; one lane per group (its leader) participates in the
      // max so ties stay deterministic.
      const int leader = __ffs(group) - 1;
      if (lane == leader) {
        my_dq = move_score(sum, in.comm_total[my_c], dv, in.two_m, my_c == curr, in.resolution);
        if (my_c == curr) e_curr = sum;
      }
    }

    // Lines 8-10: warp-wide max, then the smallest community id among the
    // lanes achieving it (the simulator's BestTracker tie-break).
    wt_t max_dq = my_dq;
    for (int offset = kWarpSize / 2; offset > 0; offset /= 2) {
      max_dq = max(max_dq, __shfl_xor_sync(kFullMask, max_dq, offset));
    }
    cid_t best = (my_dq == max_dq && active) ? my_c : kInvalidCid;
    for (int offset = kWarpSize / 2; offset > 0; offset /= 2) {
      best = min(best, __shfl_xor_sync(kFullMask, best, offset));
    }
    // Broadcast e_curr (held by the current community's leader, if any).
    for (int offset = kWarpSize / 2; offset > 0; offset /= 2) {
      e_curr += __shfl_xor_sync(kFullMask, e_curr, offset);
    }

    if (lane == 0) {
      DeviceDecision d;
      d.weight_to_curr = e_curr;
      d.curr_score = move_score(e_curr, in.comm_total[curr], dv, in.two_m, true, in.resolution);
      if (best == kInvalidCid) {
        d.best = curr;
        d.best_score = d.curr_score;
      } else {
        d.best = best;
        d.best_score = max_dq;
      }
      decisions[v] = d;
    }
  }
}

// ---------------------------------------------------------------------------
// Algorithm 3: block-per-vertex hash kernel.
// ---------------------------------------------------------------------------
struct Bucket {
  cid_t key;
  wt_t weight;
  wt_t total;
};

constexpr int kSharedBuckets = 1024;  // 1024 * 16B = 16 KiB of shared memory
constexpr int kBlockThreads = 128;

__device__ __forceinline__ std::uint32_t hash0(cid_t c, std::uint64_t salt) {
  return static_cast<std::uint32_t>(splitmix64(static_cast<std::uint64_t>(c) ^ salt) >> 32);
}
__device__ __forceinline__ std::uint32_t hash1(cid_t c, std::uint64_t salt) {
  return static_cast<std::uint32_t>(
      splitmix64(static_cast<std::uint64_t>(c) * 0x9e3779b97f4a7c15ULL ^ ~salt) >> 32);
}

/// Claims the bucket for key c (atomicCAS on the key) and returns it, or
/// nullptr when the slot holds a different key.
__device__ __forceinline__ Bucket* try_claim(Bucket* b, cid_t c, const DeviceDecideInput& in) {
  const cid_t prev = atomicCAS(&b->key, kInvalidCid, c);
  if (prev == kInvalidCid) {
    b->total = in.comm_total[c];  // Alg. 3 line 9 (benign if raced: same value)
    return b;
  }
  return prev == c ? b : nullptr;
}

__global__ void hash_decide_kernel(DeviceDecideInput in, const vid_t* vertex_list,
                                   vid_t list_size, HashPolicy policy, Bucket* global_buckets,
                                   std::uint32_t buckets_per_vertex, std::uint64_t salt,
                                   DeviceDecision* decisions) {
  __shared__ Bucket shared_buckets[kSharedBuckets];
  __shared__ wt_t block_best_score[kBlockThreads];
  __shared__ cid_t block_best_c[kBlockThreads];
  __shared__ wt_t block_e_curr;

  for (vid_t idx = blockIdx.x; idx < list_size; idx += gridDim.x) {
    const vid_t v = vertex_list[idx];
    const eid_t begin = in.offsets[v];
    const eid_t end = in.offsets[v + 1];
    const cid_t curr = in.comm[v];
    const wt_t dv = in.degree[v];
    Bucket* global_part = global_buckets + static_cast<std::size_t>(idx) * buckets_per_vertex;

    // Reset the shared part (the global slab is caller-zeroed once and
    // cleaned below after use).
    for (int i = threadIdx.x; i < kSharedBuckets; i += blockDim.x) {
      shared_buckets[i].key = kInvalidCid;
      shared_buckets[i].weight = 0;
    }
    if (threadIdx.x == 0) block_e_curr = 0;
    __syncthreads();

    // Alg. 3 lines 4-10: threads stride over the adjacency, accumulating
    // into the policy's bucket sequence.
    for (eid_t e = begin + threadIdx.x; e < end; e += blockDim.x) {
      const vid_t u = in.adjacency[e];
      if (u == v) continue;
      const cid_t c = in.comm[u];
      const wt_t w = in.weights[e];

      Bucket* b = nullptr;
      if (policy == HashPolicy::Hierarchical) {
        b = try_claim(&shared_buckets[hash0(c, salt) & (kSharedBuckets - 1)], c, in);
        if (b == nullptr) {
          std::uint32_t slot = hash1(c, salt) & (buckets_per_vertex - 1);
          while ((b = try_claim(&global_part[slot], c, in)) == nullptr) {
            slot = (slot + 1) & (buckets_per_vertex - 1);
          }
        }
      } else if (policy == HashPolicy::Unified) {
        const std::uint32_t total_buckets = kSharedBuckets + buckets_per_vertex;
        std::uint32_t slot = hash0(c, salt) % total_buckets;
        for (;;) {
          Bucket* candidate = slot < kSharedBuckets ? &shared_buckets[slot]
                                                    : &global_part[slot - kSharedBuckets];
          if ((b = try_claim(candidate, c, in)) != nullptr) break;
          slot = (slot + 1) % total_buckets;
        }
      } else {  // GlobalOnly
        std::uint32_t slot = hash1(c, salt) & (buckets_per_vertex - 1);
        while ((b = try_claim(&global_part[slot], c, in)) == nullptr) {
          slot = (slot + 1) & (buckets_per_vertex - 1);
        }
      }
      atomicAdd(&b->weight, w);  // Alg. 3 line 10
    }
    __syncthreads();

    // Lines 11-15: score occupied buckets; block-wide argmax with the
    // smallest-community tie-break.
    wt_t my_best_score = -1e300;
    cid_t my_best_c = kInvalidCid;
    auto consider = [&](const Bucket& b) {
      if (b.key == kInvalidCid) return;
      const wt_t score = move_score(b.weight, b.total, dv, in.two_m, b.key == curr, in.resolution);
      // Exactly one bucket holds the current community, so exactly one
      // thread writes block_e_curr — no atomicity needed.
      if (b.key == curr) block_e_curr = b.weight;
      if (score > my_best_score || (score == my_best_score && b.key < my_best_c)) {
        my_best_score = score;
        my_best_c = b.key;
      }
    };
    for (int i = threadIdx.x; i < kSharedBuckets; i += blockDim.x) consider(shared_buckets[i]);
    for (std::uint32_t i = threadIdx.x; i < buckets_per_vertex; i += blockDim.x) {
      consider(global_part[i]);
      global_part[i].key = kInvalidCid;  // restore the slab for the next launch
      global_part[i].weight = 0;
    }
    block_best_score[threadIdx.x] = my_best_score;
    block_best_c[threadIdx.x] = my_best_c;
    __syncthreads();
    for (int stride = blockDim.x / 2; stride > 0; stride /= 2) {
      if (threadIdx.x < stride) {
        const wt_t other = block_best_score[threadIdx.x + stride];
        const cid_t other_c = block_best_c[threadIdx.x + stride];
        if (other > block_best_score[threadIdx.x] ||
            (other == block_best_score[threadIdx.x] && other_c < block_best_c[threadIdx.x])) {
          block_best_score[threadIdx.x] = other;
          block_best_c[threadIdx.x] = other_c;
        }
      }
      __syncthreads();
    }

    if (threadIdx.x == 0) {
      DeviceDecision d;
      d.weight_to_curr = block_e_curr;
      d.curr_score =
          move_score(block_e_curr, in.comm_total[curr], dv, in.two_m, true, in.resolution);
      if (block_best_c[0] == kInvalidCid) {
        d.best = curr;
        d.best_score = d.curr_score;
      } else {
        d.best = block_best_c[0];
        d.best_score = block_best_score[0];
      }
      decisions[v] = d;
    }
    __syncthreads();
  }
}

}  // namespace

void launch_shuffle_decide(const DeviceDecideInput& input, const vid_t* vertex_list,
                           vid_t list_size, DeviceDecision* decisions, cudaStream_t stream) {
  if (list_size == 0) return;
  const int threads = 256;
  const int warps_needed = static_cast<int>(list_size);
  const int blocks = min(1024, (warps_needed * kWarpSize + threads - 1) / threads);
  shuffle_decide_kernel<<<blocks, threads, 0, stream>>>(input, vertex_list, list_size, decisions);
}

void launch_hash_decide(const DeviceDecideInput& input, const vid_t* vertex_list, vid_t list_size,
                        HashPolicy policy, void* global_buckets, std::uint32_t buckets_per_vertex,
                        std::uint64_t salt, DeviceDecision* decisions, cudaStream_t stream) {
  if (list_size == 0) return;
  const int blocks = min(static_cast<vid_t>(2048), list_size);
  hash_decide_kernel<<<blocks, kBlockThreads, 0, stream>>>(
      input, vertex_list, list_size, policy, static_cast<Bucket*>(global_buckets),
      buckets_per_vertex, salt, decisions);
}

}  // namespace gala::cuda
