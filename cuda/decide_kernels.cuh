// Device-side data layout and launch wrappers for the experimental CUDA
// port of GALA's DecideAndMove kernels. See cuda/README.md for status.
#pragma once

#include <cstdint>

namespace gala::cuda {

using vid_t = std::uint32_t;
using eid_t = std::uint64_t;
using cid_t = std::uint32_t;
using wt_t = double;

inline constexpr cid_t kInvalidCid = 0xffffffffu;

/// Device-resident CSR + iteration state (all pointers are device memory).
/// Mirrors core::DecideInput.
struct DeviceDecideInput {
  const eid_t* offsets;      // V+1
  const vid_t* adjacency;    // offsets[V]
  const wt_t* weights;       // offsets[V]
  const wt_t* degree;        // V, self-loops counted twice
  const cid_t* comm;         // V
  const wt_t* comm_total;    // V (D_V by community id)
  vid_t num_vertices;
  wt_t two_m;
  wt_t resolution;
};

/// Mirrors core::Decision.
struct DeviceDecision {
  cid_t best;
  wt_t best_score;
  wt_t curr_score;
  wt_t weight_to_curr;
};

enum class HashPolicy : int { GlobalOnly = 0, Unified = 1, Hierarchical = 2 };

/// Warp-per-vertex shuffle kernel (Algorithm 2) over `vertex_list`
/// (vertices with out-degree <= 32). Grid-stride; one warp per vertex.
void launch_shuffle_decide(const DeviceDecideInput& input, const vid_t* vertex_list,
                           vid_t list_size, DeviceDecision* decisions, cudaStream_t stream);

/// Block-per-vertex hash kernel (Algorithm 3) over `vertex_list`.
/// `global_buckets` is a slab of `buckets_per_vertex * list_size` entries of
/// {cid_t key; wt_t weight; wt_t total} (see decide_kernels.cu) zero-
/// initialised to kInvalidCid keys; `buckets_per_vertex` must be a power of
/// two >= 2 * max degree in the list.
void launch_hash_decide(const DeviceDecideInput& input, const vid_t* vertex_list, vid_t list_size,
                        HashPolicy policy, void* global_buckets, std::uint32_t buckets_per_vertex,
                        std::uint64_t salt, DeviceDecision* decisions, cudaStream_t stream);

}  // namespace gala::cuda
