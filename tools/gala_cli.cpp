// The `gala` command-line tool.
//
//   gala detect <graph> [options]   run community detection, write results
//   gala stats <graph>              graph statistics
//   gala generate <type> [options]  synthesize a graph to disk
//   gala convert <in> <out>         text edge-list <-> binary snapshot
//
// Graphs are text edge lists ("u v [w]" per line) unless the path ends in
// .bin (binary snapshot), or "standin:ABBR[:scale]" for the built-in
// stand-in suite (e.g. standin:LJ:0.5).
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>

#include "gala/baselines/label_propagation.hpp"
#include "gala/common/cli.hpp"
#include "gala/common/json.hpp"
#include "gala/common/provenance.hpp"
#include "gala/common/table.hpp"
#include "gala/common/timer.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/metrics/health.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/refinement.hpp"
#include "gala/graph/generators.hpp"
#include "gala/graph/formats.hpp"
#include "gala/graph/io.hpp"
#include "gala/graph/standin.hpp"
#include "gala/graph/stats.hpp"
#include "gala/metrics/ari.hpp"
#include "gala/metrics/nmi.hpp"
#include "gala/metrics/report.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "gala/query/executor.hpp"
#include "gala/query/store.hpp"
#include "gala/resilience/supervisor.hpp"
#include "gala/profiler/profiler.hpp"

namespace {

using namespace gala;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

graph::Graph load_graph(const std::string& spec) {
  if (spec.rfind("standin:", 0) == 0) {
    std::string rest = spec.substr(8);
    double scale = 0.5;
    if (const auto colon = rest.find(':'); colon != std::string::npos) {
      scale = std::stod(rest.substr(colon + 1));
      rest = rest.substr(0, colon);
    }
    return graph::make_standin(rest, scale);
  }
  if (ends_with(spec, ".bin")) return graph::load_binary(spec);
  if (ends_with(spec, ".mtx")) return graph::load_matrix_market(spec);
  if (ends_with(spec, ".graph") || ends_with(spec, ".metis")) return graph::load_metis(spec);
  return graph::load_edge_list(spec);
}

core::PruningStrategy parse_pruning(const std::string& name) {
  if (name == "none") return core::PruningStrategy::None;
  if (name == "SM" || name == "sm") return core::PruningStrategy::Strict;
  if (name == "RM" || name == "rm") return core::PruningStrategy::Relaxed;
  if (name == "PM" || name == "pm") return core::PruningStrategy::Probabilistic;
  if (name == "MG" || name == "mg") return core::PruningStrategy::ModularityGain;
  if (name == "MG+RM" || name == "mg+rm") return core::PruningStrategy::MgPlusRelaxed;
  GALA_CHECK(false, "unknown pruning strategy '" << name << "' (none|SM|RM|PM|MG|MG+RM)");
}

core::HashTablePolicy parse_hashtable(const std::string& name) {
  if (name == "global") return core::HashTablePolicy::GlobalOnly;
  if (name == "unified") return core::HashTablePolicy::Unified;
  if (name == "hierarchical") return core::HashTablePolicy::Hierarchical;
  GALA_CHECK(false, "unknown hashtable policy '" << name << "' (global|unified|hierarchical)");
}

core::Backend parse_backend(const std::string& name) {
  if (name == "bsp") return core::Backend::Bsp;
  if (name == "blas") return core::Backend::Blas;
  GALA_CHECK(false, "unknown backend '" << name << "' (bsp|blas)");
}

/// Probes every requested output destination up front (see
/// gala::probe_output_path): a run that cannot write its reports should fail
/// before the solve, not after it.
void check_writable_outputs(const ArgParser& args, std::initializer_list<const char*> options) {
  for (const char* opt : options) probe_output_path(opt, args.get(opt));
}

/// Parses a byte count for the budget flags: a positive integer, optionally
/// suffixed K/M/G (binary multiples). Zero, negatives, and non-numeric text
/// fail fast with the flag name and reason, matching the fail-fast style of
/// the output-path probes and gala_perf_diff's tolerance validation.
std::uint64_t parse_budget_bytes(const std::string& flag, const std::string& text) {
  const bool leading_digit = !text.empty() && text[0] >= '0' && text[0] <= '9';
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = leading_digit ? std::strtoull(text.c_str(), &end, 10) : 0;
  std::uint64_t mult = 1;
  bool ok = leading_digit && end != text.c_str() && errno == 0;
  if (ok && *end != '\0') {
    const char suffix = *end;
    ok = end[1] == '\0';
    if (suffix == 'K' || suffix == 'k') {
      mult = 1024ull;
    } else if (suffix == 'M' || suffix == 'm') {
      mult = 1024ull * 1024;
    } else if (suffix == 'G' || suffix == 'g') {
      mult = 1024ull * 1024 * 1024;
    } else {
      ok = false;
    }
  }
  GALA_CHECK(ok, "--" << flag << ": '" << text
                      << "' is not a byte count (positive integer, optional K/M/G suffix)");
  GALA_CHECK(v > 0, "--" << flag << ": budget must be positive, got '" << text << "'");
  GALA_CHECK(static_cast<std::uint64_t>(v) <= std::numeric_limits<std::uint64_t>::max() / mult,
             "--" << flag << ": '" << text << "' overflows a 64-bit byte count");
  return static_cast<std::uint64_t>(v) * mult;
}

/// Parses --mem-budget-sub's "subsystem=bytes[,subsystem=bytes...]" form.
std::vector<std::pair<std::string, std::uint64_t>> parse_subsystem_caps(const std::string& text) {
  std::vector<std::pair<std::string, std::uint64_t>> caps;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    const std::size_t eq = entry.find('=');
    GALA_CHECK(eq != std::string::npos && eq > 0,
               "--mem-budget-sub: '" << entry << "' is not subsystem=bytes");
    caps.emplace_back(entry.substr(0, eq),
                      parse_budget_bytes("mem-budget-sub", entry.substr(eq + 1)));
    pos = comma + 1;
  }
  GALA_CHECK(!caps.empty(), "--mem-budget-sub: no subsystem caps given");
  return caps;
}

int cmd_detect(int argc, const char* const* argv) {
  ArgParser args("gala detect",
                 "Detect communities with the GALA multi-level Louvain pipeline.");
  args.add_positional("graph", "edge list / .bin / standin:ABBR[:scale]")
      .add_option("pruning", "none|SM|RM|PM|MG|MG+RM", "MG")
      .add_option("hashtable", "global|unified|hierarchical", "hierarchical")
      .add_option("backend", "bsp|blas phase-1 engine (blas = linear-algebra formulation)",
                  "bsp")
      .add_option("resolution", "gamma for generalised modularity", "1.0")
      .add_option("theta", "per-iteration convergence threshold", "1e-6")
      .add_option("gpus", "simulated devices (>1 uses the distributed engine, phase 1 only)",
                  "1")
      .add_option("output", "write 'vertex community' lines here", "")
      .add_option("algorithm", "louvain|lpa", "louvain")
      .add_option("json", "write a machine-readable run report here", "")
      .add_option("trace-out", "write a Chrome-trace/Perfetto JSON of the run here", "")
      .add_option("metrics-out", "write aggregated telemetry (spans + counters) JSON here", "")
      .add_option("profile-out", "write the per-kernel hardware-counter profile JSON here", "")
      .add_option("flight-out", "write the flight-recorder event window (post-mortem JSON) here",
                  "")
      .add_option("flight-depth", "per-thread flight ring depth in events (power of two)",
                  "4096")
      .add_option("health-out", "write the algorithm-health report (stall/oscillation/frontier "
                  "diagnostics) here", "")
      .add_option("mem-out", "write the memory-observability report (per-subsystem bytes, "
                  "residency timeline, leak check) here", "")
      .add_option("mem-budget", "hard modeled-bytes budget for the memory governor (positive "
                  "integer, optional K/M/G suffix)", "")
      .add_option("mem-budget-sub", "per-subsystem governor caps, comma-separated tag=bytes "
                  "pairs (e.g. phase1=8M,gpusim=2M)", "")
      .add_option("governor-out", "write the governor report (budget, rung ladder, transitions) "
                  "here", "")
      .add_option("faults", "arm a fault-injection plan (JSON, see docs/resilience.md)", "")
      .add_option("max-retries", "supervised: transient-fault retries per level", "2")
      .add_option("query-epochs", "epochs retained by the --serve snapshot store (positive "
                  "integer)", "4")
      .add_flag("overlap", "multi-GPU: double-buffered async sync (post/complete with flow arrows)")
      .add_flag("compress", "multi-GPU: ship sparse syncs as compressed delta frames")
      .add_flag("refine", "Leiden-style refinement before each aggregation")
      .add_flag("follow", "vertex-following preprocessing (merge pendants)")
      .add_flag("supervise", "run under the resilience supervisor (retry/rollback/degrade)")
      .add_flag("strict", "supervised: fail closed on the first fault (no recovery)")
      .add_flag("probe-min-budget", "after the run, binary-search the smallest feasible budget "
                "(completes unsupervised, bit-identical partition, peak within budget)")
      .add_flag("serve", "publish the final partition into the epoch-versioned query store "
                "and answer a deterministic sample query batch")
      .add_flag("connected", "report whether every community is connected");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  check_writable_outputs(args, {"output", "json", "trace-out", "metrics-out", "profile-out",
                                "flight-out", "health-out", "mem-out", "governor-out"});

  // Fail-fast probes: reject bad engine selections before the graph loads.
  const core::Backend backend = parse_backend(args.get("backend"));
  GALA_CHECK(backend == core::Backend::Bsp || args.get_int("gpus") <= 1,
             "--backend: blas is single-device only (drop --gpus or use bsp)");
  GALA_CHECK(args.has("serve") || !args.has("query-epochs"),
             "--query-epochs: only meaningful with --serve (no query store to size)");
  long query_epochs = 0;
  if (args.has("serve")) {
    query_epochs = args.get_int("query-epochs");
    GALA_CHECK(query_epochs > 0, "--query-epochs: must be positive, got " << query_epochs);
  }

  // Telemetry: tracing is off (null sink) unless an export was requested.
  auto& tracer = telemetry::Tracer::global();
  auto& registry = telemetry::Registry::global();
  const std::string trace_out = args.get("trace-out");
  const std::string metrics_out = args.get("metrics-out");
  const std::string flight_out = args.get("flight-out");
  const std::string health_out = args.get("health-out");
  const std::string mem_out = args.get("mem-out");
  // Memory accounting is always armed; a requested report starts from a
  // clean registry so the document covers exactly this run.
  if (!mem_out.empty()) memtrace::MemRegistry::global().reset();
  {
    const long depth = args.get_int("flight-depth");
    GALA_CHECK(depth > 0, "--flight-depth must be positive");
    if (static_cast<std::size_t>(depth) != telemetry::FlightRecorder::kDefaultDepth) {
      telemetry::FlightRecorder::global().set_depth(static_cast<std::size_t>(depth));
    }
  }
  // The health monitor rides the engines' end-of-iteration hook; it observes
  // globally-reduced, modeled state only, so its report is byte-identical
  // across pooling / parallelism / sync configurations.
  std::optional<metrics::HealthMonitor> health;
  if (!health_out.empty()) health.emplace();
  if (!trace_out.empty() || !metrics_out.empty()) {
    tracer.reset();
    registry.reset();
    tracer.set_enabled(true);
    if (!trace_out.empty()) {
      tracer.add_sink(std::make_shared<telemetry::ChromeTraceSink>(trace_out));
    }
  }
  const std::string profile_out = args.get("profile-out");
  auto& prof = profiler::Profiler::global();
  if (!profile_out.empty()) {
    prof.reset();
    prof.set_enabled(true);
  }

  // Fault injection: arm the plan before any pipeline work so every
  // instrumented site (kernel launches, arena, scratch, collectives) sees it.
  std::optional<resilience::ScopedFaultPlan> armed_plan;
  if (const std::string plan_path = args.get("faults"); !plan_path.empty()) {
    armed_plan.emplace(resilience::FaultPlan::load(plan_path));
    std::printf("armed fault plan %s\n", plan_path.c_str());
  }

  // Memory governor: install the budget before the graph loads so the very
  // first modeled allocation is already admitted.
  const std::string governor_out = args.get("governor-out");
  governor::BudgetConfig gov_cfg;
  if (const std::string b = args.get("mem-budget"); !b.empty()) {
    gov_cfg.total_bytes = parse_budget_bytes("mem-budget", b);
  }
  if (const std::string s = args.get("mem-budget-sub"); !s.empty()) {
    gov_cfg.subsystem_caps = parse_subsystem_caps(s);
  }
  const bool governed = gov_cfg.total_bytes != 0 || !gov_cfg.subsystem_caps.empty();
  if (governed) {
    governor::Governor::global().install(gov_cfg);
    std::printf("governor: enforcing budget %llu B with %zu subsystem caps\n",
                static_cast<unsigned long long>(gov_cfg.total_bytes),
                gov_cfg.subsystem_caps.size());
  }

  PhaseTimer load_timer;
  graph::Graph g;
  {
    ScopedPhase load_phase(load_timer);
    telemetry::ScopedSpan load_span(tracer, "load-graph", "cli");
    g = load_graph(args.get("graph"));
  }
  std::printf("graph: %s (loaded in %.3f s)\n", graph::summary(g).c_str(),
              load_timer.total_seconds());

  std::vector<cid_t> assignment;
  // --probe-min-budget replays the solve under trial budgets; each Louvain
  // branch stashes a replayable unsupervised configuration here (health
  // callback cleared so the probe never pollutes the health report).
  std::function<std::vector<cid_t>()> probe_solve;
  if (args.get("algorithm") == "lpa") {
    baselines::LpaOptions opts;
    const auto r = baselines::label_propagation(g, opts);
    assignment = r.labels;
    std::printf("label propagation: %u communities in %d iterations, modularity %.5f\n",
                r.num_communities, r.iterations,
                core::modularity(g, assignment, args.get_double("resolution")));
  } else if (args.get_int("gpus") > 1) {
    multigpu::DistributedConfig cfg;
    cfg.num_gpus = static_cast<std::size_t>(args.get_int("gpus"));
    cfg.pruning = parse_pruning(args.get("pruning"));
    cfg.hashtable = parse_hashtable(args.get("hashtable"));
    cfg.resolution = args.get_double("resolution");
    cfg.theta = args.get_double("theta");
    cfg.overlap = args.has("overlap");
    cfg.compress = args.has("compress");
    if (health.has_value()) cfg.on_iteration = health->callback();
    {
      multigpu::DistributedConfig probe_cfg = cfg;
      probe_cfg.on_iteration = nullptr;
      probe_solve = [&g, probe_cfg] {
        auto pr = multigpu::distributed_phase1(g, probe_cfg);
        core::renumber_communities(pr.community);
        return pr.community;
      };
    }
    const auto r = multigpu::distributed_phase1(g, cfg);
    assignment = r.community;
    core::renumber_communities(assignment);
    std::printf("distributed phase 1 on %zu devices: modularity %.5f, %d iterations, "
                "%.3f modeled ms, %.3f s wall\n",
                cfg.num_gpus, r.modularity, r.iterations, r.modeled_ms(), r.wall_seconds);
  } else {
    core::GalaConfig cfg;
    cfg.backend = backend;
    cfg.bsp.pruning = parse_pruning(args.get("pruning"));
    cfg.bsp.hashtable = parse_hashtable(args.get("hashtable"));
    cfg.bsp.resolution = args.get_double("resolution");
    cfg.bsp.theta = args.get_double("theta");
    cfg.refine = args.has("refine");
    cfg.vertex_following = args.has("follow");
    if (health.has_value()) cfg.bsp.on_iteration = health->callback();
    {
      core::GalaConfig probe_cfg = cfg;
      probe_cfg.bsp.on_iteration = nullptr;
      probe_solve = [&g, probe_cfg] { return core::run_louvain(g, probe_cfg).assignment; };
    }
    const bool supervised = args.has("supervise") || args.has("faults") || args.has("strict") ||
                            args.has("max-retries");
    core::GalaResult r;
    if (supervised) {
      resilience::SupervisorConfig sup;
      sup.max_retries = args.get_int("max-retries");
      sup.strict = args.has("strict");
      // Incidents (retries, validator failures, fallbacks, rollbacks) dump
      // the flight window to the same file the end-of-run dump uses; the
      // final write preserves the incident events (they are still in the
      // ring) under the freshest reason.
      sup.flight_dump_path = flight_out;
      const resilience::SupervisedResult sr = resilience::run_louvain_supervised(g, cfg, sup);
      r = sr.result;
      std::printf("supervisor: %d retries%s%s%s\n", sr.retries,
                  sr.degraded ? ", degraded path taken" : "",
                  sr.rolled_back ? ", rolled back to best level" : "",
                  sr.events.empty() ? ", no recovery events" : "");
      for (const auto& ev : sr.events) {
        std::printf("  recovery: level %d attempt %d [%s] %s — %s\n", ev.level, ev.attempt,
                    ev.stage.c_str(), ev.action.c_str(), ev.detail.c_str());
      }
    } else {
      r = core::run_louvain(g, cfg);
    }
    assignment = r.assignment;
    if (const std::string json = args.get("json"); !json.empty()) {
      metrics::save_run_report(g, cfg, r, json);
      std::printf("wrote run report to %s\n", json.c_str());
    }
    std::printf("GALA: %u communities, modularity %.5f, %zu levels, %.3f s wall, "
                "%.3f modeled ms\n",
                r.num_communities, r.modularity, r.levels.size(), r.wall_seconds, r.modeled_ms);
    for (const auto& lv : r.levels) {
      std::printf("  level: %u -> %u (Q=%.5f, %d iters)\n", lv.vertices, lv.communities,
                  lv.modularity, lv.iterations);
    }
  }

  const auto cs = graph::community_stats(g, assignment);
  std::printf("sizes: largest=%u median=%.0f smallest=%u, coverage=%.1f%%\n", cs.largest,
              cs.median_size, cs.smallest, 100.0 * cs.coverage);
  if (args.has("connected")) {
    std::printf("all communities connected: %s\n",
                core::is_partition_connected(g, assignment) ? "yes" : "no");
  }
  if (args.has("serve")) {
    // Scoped so the store (and its governor reclaimer, when a budget is
    // installed) unwinds before the governor epilogue below.
    query::StoreOptions qopts;
    qopts.max_retained = static_cast<std::size_t>(query_epochs);
    qopts.governor_client = governed;
    query::CommunityStore store(qopts);
    const std::uint64_t epoch = store.publish(g, assignment, query::SnapshotSource::Direct,
                                              args.get_double("resolution"));
    query::SnapshotRef snap = store.current();
    GALA_CHECK(snap && snap->validate().empty(), "--serve: published snapshot failed validation");
    query::QueryExecutor exec(store);
    const auto top = exec.top_k(*snap, 3);
    std::ostringstream tops;
    for (std::size_t i = 0; i < top.size(); ++i) {
      tops << (i ? " " : "") << top[i].community << "=" << top[i].size;
    }
    std::printf("query: epoch %llu serving %u communities (retain %ld), top sizes [%s], "
                "%llu B resident\n",
                static_cast<unsigned long long>(epoch), snap->num_communities(), query_epochs,
                tops.str().c_str(), static_cast<unsigned long long>(store.resident_bytes()));
    if (g.num_vertices() > 0) {
      const std::vector<vid_t> probes = {0, g.num_vertices() / 2, g.num_vertices() - 1};
      const auto owners = exec.community_of(*snap, probes);
      const auto sizes = exec.community_size_of(*snap, probes);
      for (std::size_t i = 0; i < probes.size(); ++i) {
        std::printf("query: v%u -> community %u (%u members)\n", probes[i], owners[i], sizes[i]);
      }
    }
  }
  if (const std::string out = args.get("output"); !out.empty()) {
    std::ofstream f(out);
    GALA_CHECK(f.is_open(), "cannot open " << out);
    for (vid_t v = 0; v < g.num_vertices(); ++v) f << v << ' ' << assignment[v] << '\n';
    std::printf("wrote %s\n", out.c_str());
  }
  if (!trace_out.empty()) {
    tracer.flush_sinks();
    std::printf("wrote trace to %s (%zu spans; open in chrome://tracing or ui.perfetto.dev)\n",
                trace_out.c_str(), tracer.span_count());
  }
  if (!metrics_out.empty()) {
    telemetry::write_file(metrics_out, telemetry::metrics_json(tracer, registry));
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!profile_out.empty()) {
    telemetry::write_file(profile_out, prof.report_json());
    std::printf("wrote kernel profile to %s (%zu kernels)\n", profile_out.c_str(),
                prof.snapshot().size());
  }
  if (!flight_out.empty()) {
    auto& recorder = telemetry::FlightRecorder::global();
    GALA_CHECK(recorder.write_postmortem(flight_out, "end-of-run"),
               flight_out << ": cannot write flight dump");
    std::printf("wrote flight recorder dump to %s (%llu events recorded, depth %zu)\n",
                flight_out.c_str(), static_cast<unsigned long long>(recorder.recorded()),
                recorder.depth());
  }
  if (health.has_value()) {
    const metrics::HealthReport report = health->report();
    report.save(health_out);
    std::printf("wrote health report to %s (%zu levels, %d stalled, %u oscillating vertices)\n",
                health_out.c_str(), report.levels.size(), report.stalled_levels(),
                report.oscillating_vertices());
  }
  if (!mem_out.empty()) {
    memtrace::MemReport report = memtrace::MemRegistry::global().report();
    if (governed) report.governor = governor::Governor::global().section_json();
    report.save(mem_out);
    std::printf("wrote memory report to %s (%zu subsystems, peak %llu B workspace / %llu B "
                "total, %.2f%% fragmentation, leak check %s)\n",
                mem_out.c_str(), report.subsystems.size(),
                static_cast<unsigned long long>(report.peak_ws_bytes()),
                static_cast<unsigned long long>(report.peak_total_bytes()), report.frag_pct(),
                report.leak_free() ? "clean" : "RETAINED BYTES");
  }

  // Governor epilogue: summary line, then the optional min-feasible-budget
  // probe (which resets the memory registry per trial, so it must run after
  // every report above has been written), then the standalone report.
  std::string governor_section;
  if (governed) {
    auto& gov = governor::Governor::global();
    governor_section = gov.section_json();
    std::printf("governor: budget %llu B, rung %s, %llu admits, %llu denials, %llu shrinks, "
                "%llu reclaims\n",
                static_cast<unsigned long long>(gov.budget_total()),
                governor::to_string(gov.rung()),
                static_cast<unsigned long long>(gov.admits()),
                static_cast<unsigned long long>(gov.denials()),
                static_cast<unsigned long long>(gov.shrinks()),
                static_cast<unsigned long long>(gov.reclaims()));
    gov.uninstall();
  }

  std::uint64_t min_feasible = 0;
  std::uint64_t unlimited_peak = 0;
  if (args.has("probe-min-budget")) {
    GALA_CHECK(probe_solve != nullptr, "--probe-min-budget requires algorithm=louvain");
    // A still-armed fault plan would fire inside the trial runs and break the
    // probe's monotone-feasibility assumption; the main run is over, drop it.
    armed_plan.reset();
    auto& mem = memtrace::MemRegistry::global();
    mem.reset();
    const std::vector<cid_t> reference = probe_solve();
    unlimited_peak = mem.report().peak_total_bytes();
    const auto feasible = [&](std::uint64_t budget) {
      mem.reset();
      governor::BudgetConfig trial;
      trial.total_bytes = budget;
      governor::ScopedBudget scoped(trial);
      std::vector<cid_t> partition;
      try {
        partition = probe_solve();
      } catch (const ResourceExhausted&) {
        return false;
      }
      return memtrace::MemRegistry::global().report().peak_total_bytes() <= budget &&
             partition == reference;
    };
    min_feasible = governor::min_feasible_budget(unlimited_peak, feasible);
    std::printf("min feasible budget: %llu B (unlimited peak %llu B)\n",
                static_cast<unsigned long long>(min_feasible),
                static_cast<unsigned long long>(unlimited_peak));
  }

  if (!governor_out.empty()) {
    JsonWriter w;
    w.begin_object();
    if (!governor_section.empty()) w.key("governor").raw(governor_section);
    if (args.has("probe-min-budget")) {
      w.key("min_feasible_budget_bytes").value(min_feasible);
      w.key("unlimited_peak_bytes").value(unlimited_peak);
    }
    provenance::append(w, "governor", 1);
    w.end_object();
    telemetry::write_file(governor_out, w.str());
    std::printf("wrote governor report to %s\n", governor_out.c_str());
  }
  return 0;
}

int cmd_stats(int argc, const char* const* argv) {
  ArgParser args("gala stats", "Print graph statistics.");
  args.add_positional("graph", "edge list / .bin / standin:ABBR[:scale]");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;
  const graph::Graph g = load_graph(args.get("graph"));
  std::printf("%s\n%s\n", graph::summary(g).c_str(),
              graph::describe(graph::degree_stats(g)).c_str());
  vid_t components = 0;
  graph::connected_components(g, components);
  std::printf("connected components: %u (largest %u vertices)\n", components,
              graph::largest_component_size(g));
  const auto ds = graph::degree_stats(g);
  TextTable hist({"degree bucket", "vertices"});
  for (std::size_t b = 0; b < ds.log2_histogram.size(); ++b) {
    std::ostringstream label;
    label << "[" << (b == 0 ? 0 : (1u << b)) << ", " << (1u << (b + 1)) << ")";
    hist.row().cell(label.str()).cell(ds.log2_histogram[b]);
  }
  hist.print();
  return 0;
}

int cmd_generate(int argc, const char* const* argv) {
  ArgParser args("gala generate", "Synthesize a graph and write it to disk.");
  args.add_positional("type", "planted|lfr|rmat|er|ring")
      .add_option("out", "output path (.bin for binary)", "graph.txt")
      .add_option("vertices", "vertex count", "10000")
      .add_option("communities", "community count (planted)", "100")
      .add_option("avg-degree", "average degree (planted)", "16")
      .add_option("mixing", "inter-community mixing (planted/lfr)", "0.2")
      .add_option("degree-exponent", "power-law exponent (planted skew / lfr)", "0")
      .add_option("edges", "edge count (er)", "50000")
      .add_option("scale", "log2 vertices (rmat)", "14")
      .add_option("edge-factor", "edges per vertex (rmat)", "8")
      .add_option("cliques", "clique count (ring)", "100")
      .add_option("clique-size", "clique size (ring)", "10")
      .add_option("seed", "random seed", "1")
      .add_option("truth", "also write ground-truth communities here", "");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const std::string type = args.get("type");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  std::vector<cid_t> truth;
  graph::Graph g;
  if (type == "planted") {
    graph::PlantedPartitionParams p;
    p.num_vertices = static_cast<vid_t>(args.get_int("vertices"));
    p.num_communities = static_cast<vid_t>(args.get_int("communities"));
    p.avg_degree = args.get_double("avg-degree");
    p.mixing = args.get_double("mixing");
    p.degree_exponent = args.get_double("degree-exponent");
    p.seed = seed;
    g = graph::planted_partition(p, &truth);
  } else if (type == "lfr") {
    graph::LfrParams p;
    p.num_vertices = static_cast<vid_t>(args.get_int("vertices"));
    p.mixing = args.get_double("mixing");
    if (args.get_double("degree-exponent") > 0) p.degree_exponent = args.get_double("degree-exponent");
    p.seed = seed;
    g = graph::lfr(p, truth);
  } else if (type == "rmat") {
    graph::RmatParams p;
    p.scale = static_cast<int>(args.get_int("scale"));
    p.edge_factor = args.get_double("edge-factor");
    p.seed = seed;
    g = graph::rmat(p);
  } else if (type == "er") {
    g = graph::erdos_renyi(static_cast<vid_t>(args.get_int("vertices")),
                           static_cast<eid_t>(args.get_int("edges")), seed);
  } else if (type == "ring") {
    g = graph::ring_of_cliques(static_cast<vid_t>(args.get_int("cliques")),
                               static_cast<vid_t>(args.get_int("clique-size")));
  } else {
    std::fprintf(stderr, "unknown type '%s'\n", type.c_str());
    return 2;
  }

  const std::string out = args.get("out");
  if (ends_with(out, ".bin")) {
    graph::save_binary(g, out);
  } else {
    graph::save_edge_list(g, out);
  }
  std::printf("wrote %s: %s\n", out.c_str(), graph::summary(g).c_str());
  if (const std::string tpath = args.get("truth"); !tpath.empty() && !truth.empty()) {
    std::ofstream f(tpath);
    GALA_CHECK(f.is_open(), "cannot open " << tpath);
    for (vid_t v = 0; v < g.num_vertices(); ++v) f << v << ' ' << truth[v] << '\n';
    std::printf("wrote ground truth to %s\n", tpath.c_str());
  }
  return 0;
}

/// Loads a "vertex community" file (as written by detect --output).
std::vector<cid_t> load_assignment(const std::string& path) {
  std::ifstream in(path);
  GALA_CHECK(in.is_open(), "cannot open assignment file: " << path);
  std::vector<std::pair<vid_t, cid_t>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t v = 0, c = 0;
    GALA_CHECK(static_cast<bool>(ls >> v >> c), "malformed assignment line: " << line);
    rows.emplace_back(static_cast<vid_t>(v), static_cast<cid_t>(c));
  }
  vid_t n = 0;
  for (const auto& [v, c] : rows) n = std::max(n, v + 1);
  std::vector<cid_t> out(n, kInvalidCid);
  for (const auto& [v, c] : rows) out[v] = c;
  for (vid_t v = 0; v < n; ++v) {
    GALA_CHECK(out[v] != kInvalidCid, "assignment missing vertex " << v);
  }
  return out;
}

int cmd_compare(int argc, const char* const* argv) {
  ArgParser args("gala compare",
                 "Compare two community assignments (NMI / ARI / sizes).");
  args.add_positional("a", "first 'vertex community' file")
      .add_positional("b", "second 'vertex community' file");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;
  const auto a = load_assignment(args.get("a"));
  const auto b = load_assignment(args.get("b"));
  GALA_CHECK(a.size() == b.size(), "assignments cover different vertex counts: " << a.size()
                                                                                 << " vs "
                                                                                 << b.size());
  std::printf("vertices: %zu\n", a.size());
  std::printf("communities: %u vs %u\n", core::count_communities(a),
              core::count_communities(b));
  std::printf("NMI: %.5f\n", metrics::nmi(a, b));
  std::printf("ARI: %.5f\n", metrics::adjusted_rand_index(a, b));
  return 0;
}

int cmd_convert(int argc, const char* const* argv) {
  ArgParser args("gala convert", "Convert between text edge lists and binary snapshots.");
  args.add_positional("input", "source graph").add_positional("output", "destination");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;
  const graph::Graph g = load_graph(args.get("input"));
  const std::string out = args.get("output");
  if (ends_with(out, ".bin")) {
    graph::save_binary(g, out);
  } else if (ends_with(out, ".graph") || ends_with(out, ".metis")) {
    graph::save_metis(g, out);
  } else {
    graph::save_edge_list(g, out);
  }
  std::printf("wrote %s: %s\n", out.c_str(), graph::summary(g).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: gala <command> [args]\n"
                 "commands: detect, stats, generate, convert, compare\n"
                 "run 'gala <command> --help' for details\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "detect") return cmd_detect(argc - 1, argv + 1);
    if (cmd == "stats") return cmd_stats(argc - 1, argv + 1);
    if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
    if (cmd == "convert") return cmd_convert(argc - 1, argv + 1);
    if (cmd == "compare") return cmd_compare(argc - 1, argv + 1);
    std::fprintf(stderr,
                 "unknown command '%s' (detect|stats|generate|convert|compare)\n", cmd.c_str());
    return 2;
  } catch (const gala::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
