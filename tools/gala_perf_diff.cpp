// Compares two performance sidecar files (or directories of them) and fails
// when modeled counters drift beyond tolerance — the CI perf-regression gate.
//
// Usage:
//   gala_perf_diff <baseline> <current> [--tolerance T] [--ms-tolerance M]
//                  [--alloc-tolerance A] [--comm-tolerance C]
//                  [--overhead-tolerance O] [--mem-tolerance B] [--strict-new]
//
// <baseline>/<current> are JSON files, or directories compared pairwise by
// file name (every baseline file must exist on the current side). Documents
// are walked recursively and numeric leaves compared by relative delta:
//
//   - keys starting with "wall" are skipped (host wall-clock is
//     nondeterministic; modeled counters are the contract),
//   - keys ending in "_efficiency" are higher-better: only a drop beyond
//     --tolerance is a regression,
//   - "modeled_ms" / "modeled_cycles" are lower-better: only growth beyond
//     --ms-tolerance is a regression,
//   - keys ending in "_allocs" are lower-better with a zero default budget
//     (--alloc-tolerance): workspace pool misses are exact counts, so any
//     growth means a pooled path started hitting the heap,
//   - keys ending in "comm_bytes" are lower-better with a zero default
//     budget (--comm-tolerance): the distributed sync trajectory is
//     bit-deterministic, so for an unchanged configuration any growth in
//     wire volume is a communication regression (shrinkage — better
//     elision or compression — passes),
//   - keys ending in "_overhead_pct" are compared absolutely, in percentage
//     points (--overhead-tolerance): the baseline hovers near zero, so a
//     relative rule would flag noise; the contract is "armed instrumentation
//     stays under N points of overhead", not "matches the baseline",
//   - keys matching "peak_*_bytes" are lower-better with a zero default
//     budget (--mem-tolerance): memory high-water marks are modeled from
//     deterministic request sequences, so any growth means a subsystem's
//     footprint regressed (shrinkage passes),
//   - keys starting with "min_feasible" are lower-better with the same zero
//     default budget (--mem-tolerance): the smallest enforceable memory
//     budget is binary-searched from modeled bytes, so growth means the
//     governor's degradation ladder lost headroom (shrinkage passes),
//   - every other number must match within --tolerance in either direction
//     (the emulated counters are deterministic, so any drift is a change
//     worth explaining — refresh the baseline deliberately, see
//     bench/baseline/README.md).
//
// A relative-rule metric whose baseline value is exactly zero is reported as
// a "new metric" and passes (the row gained a field after the baseline was
// cut; refresh the baseline to start gating it) unless --strict-new is
// given. Zero-growth rules (_allocs, comm_bytes, peak_*_bytes,
// min_feasible*) are exempt: there, base 0 -> cur > 0 is precisely the
// regression being gated.
//
// Array elements align by their "name" member when present, else by index.
// Exit codes: 0 = within tolerance, 1 = regression/drift, 2 = usage or I/O.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/common/json.hpp"

namespace {

namespace fs = std::filesystem;

struct Options {
  double tolerance = 0.02;       // symmetric counter drift
  double ms_tolerance = 0.10;    // modeled-ms / modeled-cycles growth
  double alloc_tolerance = 0.0;  // "*_allocs" growth (pool misses are exact)
  double comm_tolerance = 0.0;   // "*comm_bytes" growth (wire volume is exact)
  double overhead_tolerance = 2.0;  // "*_overhead_pct" ceiling, percentage points
  double mem_tolerance = 0.0;       // "peak_*_bytes" growth (modeled bytes are exact)
  bool strict_new = false;          // fail on zero-baseline metrics instead of noting them
};

struct DiffState {
  const Options* opts = nullptr;
  int regressions = 0;

  void report(const std::string& path, double base, double cur, const char* what) {
    ++regressions;
    std::fprintf(stderr, "perf_diff: %s: %s (baseline %.6g, current %.6g, %+.2f%%)\n",
                 path.c_str(), what, base, cur,
                 base != 0 ? 100.0 * (cur - base) / std::fabs(base) : 0.0);
  }

  /// A metric whose baseline is exactly zero has no meaningful relative
  /// delta — it usually means the row gained a field after the baseline was
  /// cut. Note it (and pass) unless --strict-new turns it into a failure.
  void report_new(const std::string& path, double cur) {
    if (opts->strict_new) {
      report(path, 0, cur, "new metric (zero baseline) under --strict-new");
      return;
    }
    std::fprintf(stderr,
                 "perf_diff: %s: new metric (baseline 0, current %.6g) — refresh the "
                 "baseline to start gating it\n",
                 path.c_str(), cur);
  }
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// The final key of a JSON path like "kernels/decide_hash/modeled_ms".
std::string leaf_key(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

void diff_value(const gala::JsonValue& base, const gala::JsonValue& cur, const std::string& path,
                DiffState& state);

void diff_number(double base, double cur, const std::string& path, DiffState& state) {
  const std::string key = leaf_key(path);
  if (starts_with(key, "wall")) return;  // nondeterministic by design
  if (ends_with(key, "_overhead_pct")) {
    // Overhead rows measure a ratio that should sit at ~0%, where relative
    // comparison explodes; gate on the absolute ceiling instead.
    if (cur > base + state.opts->overhead_tolerance) {
      state.report(path, base, cur, "instrumentation overhead regressed");
    }
    return;
  }
  const double denom = std::max(std::fabs(base), 1e-12);
  const double rel = (cur - base) / denom;
  if (ends_with(key, "_efficiency")) {
    if (base == 0 && cur != 0) return state.report_new(path, cur);
    if (rel < -state.opts->tolerance) state.report(path, base, cur, "efficiency regressed");
  } else if (key == "modeled_ms" || key == "modeled_cycles") {
    if (base == 0 && cur != 0) return state.report_new(path, cur);
    if (rel > state.opts->ms_tolerance) state.report(path, base, cur, "modeled time regressed");
  } else if (ends_with(key, "_allocs")) {
    // Workspace pool misses are deterministic, so they gate at zero growth
    // by default: any new steady-state allocation is a pooling regression.
    // A zero baseline is NOT a "new metric" here — base 0 -> cur > 0 is
    // exactly the regression this rule exists to catch.
    if (rel > state.opts->alloc_tolerance) state.report(path, base, cur, "allocations regressed");
  } else if (ends_with(key, "comm_bytes")) {
    // Distributed wire volume is deterministic: growth for an unchanged
    // configuration means sync payloads, elision, or compression regressed.
    if (rel > state.opts->comm_tolerance) state.report(path, base, cur, "comm bytes regressed");
  } else if (starts_with(key, "min_feasible")) {
    // The smallest budget that still completes with a reference-identical
    // partition is modeled and deterministic; growth means the degradation
    // ladder lost headroom somewhere. Shrinkage passes. A zero baseline
    // stays a hard gate, like the other byte budgets.
    if (rel > state.opts->mem_tolerance) {
      state.report(path, base, cur, "min feasible budget regressed");
    }
  } else if (starts_with(key, "peak_") && ends_with(key, "_bytes")) {
    // Memory high-water marks are modeled (power-of-two size classes over
    // deterministic request sequences), so they gate at zero growth by
    // default: any new peak means a subsystem's footprint grew. Shrinkage
    // passes. Like _allocs, a zero baseline stays a hard gate.
    if (rel > state.opts->mem_tolerance) state.report(path, base, cur, "peak bytes regressed");
  } else {
    if (base == 0 && cur != 0) return state.report_new(path, cur);
    if (std::fabs(rel) > state.opts->tolerance) state.report(path, base, cur, "counter drifted");
  }
}

void diff_array(const gala::JsonValue& base, const gala::JsonValue& cur, const std::string& path,
                DiffState& state) {
  // Align by "name" when every element carries one (the kernels array);
  // fall back to positional comparison (histogram buckets).
  const auto named = [](const gala::JsonValue& arr) {
    if (arr.array.empty()) return false;
    for (const auto& e : arr.array) {
      const gala::JsonValue* n = e.find("name");
      if (n == nullptr || !n->is_string()) return false;
    }
    return true;
  };
  if (named(base) && named(cur)) {
    std::map<std::string, const gala::JsonValue*> cur_by_name;
    for (const auto& e : cur.array) cur_by_name[e.at("name").string] = &e;
    for (const auto& e : base.array) {
      const std::string name = e.at("name").string;
      const auto it = cur_by_name.find(name);
      if (it == cur_by_name.end()) {
        state.report(path + "/" + name, 1, 0, "element missing from current");
        continue;
      }
      diff_value(e, *it->second, path + "/" + name, state);
    }
    return;
  }
  if (base.array.size() != cur.array.size()) {
    state.report(path, static_cast<double>(base.array.size()),
                 static_cast<double>(cur.array.size()), "array length changed");
    return;
  }
  for (std::size_t i = 0; i < base.array.size(); ++i) {
    diff_value(base.array[i], cur.array[i], path + "/" + std::to_string(i), state);
  }
}

void diff_value(const gala::JsonValue& base, const gala::JsonValue& cur, const std::string& path,
                DiffState& state) {
  if (base.type != cur.type) {
    state.report(path, 0, 0, "value type changed");
    return;
  }
  switch (base.type) {
    case gala::JsonValue::Type::Number:
      diff_number(base.number, cur.number, path, state);
      return;
    case gala::JsonValue::Type::Object:
      for (const auto& [key, value] : base.object) {
        if (starts_with(key, "wall")) continue;
        const gala::JsonValue* other = cur.find(key);
        if (other == nullptr) {
          state.report(path + "/" + key, 1, 0, "member missing from current");
          continue;
        }
        diff_value(value, *other, path + "/" + key, state);
      }
      return;
    case gala::JsonValue::Type::Array:
      diff_array(base, cur, path, state);
      return;
    default:
      return;  // strings/bools/nulls are labels, not measurements
  }
}

gala::JsonValue load(const fs::path& file) {
  std::ifstream in(file);
  GALA_CHECK(in.is_open(), "cannot open " << file.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return gala::parse_json(ss.str());
}

int diff_files(const fs::path& base, const fs::path& cur, const Options& opts) {
  DiffState state;
  state.opts = &opts;
  diff_value(load(base), load(cur), base.filename().string(), state);
  if (state.regressions > 0) {
    std::fprintf(stderr, "perf_diff: %s vs %s: %d regression%s\n", base.string().c_str(),
                 cur.string().c_str(), state.regressions, state.regressions == 1 ? "" : "s");
    return 1;
  }
  std::printf("perf_diff: %s ok\n", base.filename().string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_double = [&](double& out) {
      if (++i >= argc) {
        std::fprintf(stderr, "perf_diff: %s needs a value\n", arg.c_str());
        return false;
      }
      char* end = nullptr;
      const double v = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || !(v >= 0.0)) {
        std::fprintf(stderr, "perf_diff: %s needs a non-negative number, got '%s'\n",
                     arg.c_str(), argv[i]);
        return false;
      }
      out = v;
      return true;
    };
    if (arg == "--tolerance") {
      if (!next_double(opts.tolerance)) return 2;
    } else if (arg == "--ms-tolerance") {
      if (!next_double(opts.ms_tolerance)) return 2;
    } else if (arg == "--alloc-tolerance") {
      if (!next_double(opts.alloc_tolerance)) return 2;
    } else if (arg == "--comm-tolerance") {
      if (!next_double(opts.comm_tolerance)) return 2;
    } else if (arg == "--overhead-tolerance") {
      if (!next_double(opts.overhead_tolerance)) return 2;
    } else if (arg == "--mem-tolerance") {
      if (!next_double(opts.mem_tolerance)) return 2;
    } else if (arg == "--strict-new") {
      opts.strict_new = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: gala_perf_diff <baseline> <current> [--tolerance T] "
                 "[--ms-tolerance M] [--alloc-tolerance A] [--comm-tolerance C] "
                 "[--overhead-tolerance O] [--mem-tolerance B] [--strict-new]\n");
    return 2;
  }

  const fs::path base(positional[0]), cur(positional[1]);
  try {
    if (fs::is_directory(base)) {
      if (!fs::is_directory(cur)) {
        std::fprintf(stderr, "perf_diff: %s is a directory but %s is not\n",
                     base.string().c_str(), cur.string().c_str());
        return 2;
      }
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(base)) {
        if (entry.is_regular_file() && entry.path().extension() == ".json") {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      if (files.empty()) {
        std::fprintf(stderr, "perf_diff: no .json files in %s\n", base.string().c_str());
        return 2;
      }
      int worst = 0;
      for (const auto& file : files) {
        const fs::path other = cur / file.filename();
        if (!fs::exists(other)) {
          std::fprintf(stderr, "perf_diff: %s missing from %s\n",
                       file.filename().string().c_str(), cur.string().c_str());
          worst = std::max(worst, 1);
          continue;
        }
        worst = std::max(worst, diff_files(file, other, opts));
      }
      return worst;
    }
    return diff_files(base, cur, opts);
  } catch (const gala::Error& e) {
    std::fprintf(stderr, "perf_diff: %s\n", e.what());
    return 2;
  }
}
