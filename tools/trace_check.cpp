// Validates telemetry JSON emitted by the gala CLI (and the bench JSON
// sidecars): the file must parse, have the expected top-level shape, and —
// optionally — contain required span names. Exits 0 on success, 1 on any
// failure, so CI can gate on trace validity.
//
// Usage:
//   trace_check <file.json> [--chrome] [--require NAME]...
//
//   --chrome        expect Chrome-trace shape ({"traceEvents":[...]});
//                   default accepts either that or a metrics/summary
//                   document ({"spans":{...}} or {"spans":[...]}).
//   --require NAME  fail unless a span name containing NAME (substring)
//                   is present. Repeatable.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/common/json.hpp"

namespace {

/// Collects the span names present in a telemetry document of any shape.
std::set<std::string> collect_names(const gala::JsonValue& doc) {
  std::set<std::string> names;
  if (const gala::JsonValue* events = doc.find("traceEvents")) {
    for (const auto& e : events->array) {
      if (const gala::JsonValue* n = e.find("name")) names.insert(n->string);
    }
  }
  if (const gala::JsonValue* spans = doc.find("spans")) {
    if (spans->is_array()) {  // flat JsonSink dump
      for (const auto& s : spans->array) {
        if (const gala::JsonValue* n = s.find("name")) names.insert(n->string);
      }
    } else if (spans->is_object()) {  // aggregated summary: "category/name" keys
      for (const auto& [key, value] : spans->object) names.insert(key);
    }
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  bool chrome = false;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chrome") {
      chrome = true;
    } else if (arg == "--require") {
      if (++i >= argc) {
        std::fprintf(stderr, "trace_check: --require needs a value\n");
        return 1;
      }
      required.emplace_back(argv[i]);
    } else if (file.empty()) {
      file = arg;
    } else {
      std::fprintf(stderr, "trace_check: unexpected argument '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr, "usage: trace_check <file.json> [--chrome] [--require NAME]...\n");
    return 1;
  }

  std::ifstream in(file);
  if (!in.is_open()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", file.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  gala::JsonValue doc;
  try {
    doc = gala::parse_json(ss.str());
  } catch (const gala::Error& e) {
    std::fprintf(stderr, "trace_check: %s: invalid JSON: %s\n", file.c_str(), e.what());
    return 1;
  }
  if (!doc.is_object()) {
    std::fprintf(stderr, "trace_check: %s: top level is not an object\n", file.c_str());
    return 1;
  }

  const gala::JsonValue* events = doc.find("traceEvents");
  if (chrome) {
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "trace_check: %s: no traceEvents array\n", file.c_str());
      return 1;
    }
    for (const auto& e : events->array) {
      if (e.find("name") == nullptr || e.find("ph") == nullptr || e.find("ts") == nullptr) {
        std::fprintf(stderr, "trace_check: %s: malformed trace event\n", file.c_str());
        return 1;
      }
    }
  } else if (events == nullptr && doc.find("spans") == nullptr) {
    std::fprintf(stderr, "trace_check: %s: neither traceEvents nor spans present\n",
                 file.c_str());
    return 1;
  }

  const std::set<std::string> names = collect_names(doc);
  for (const auto& want : required) {
    bool found = false;
    for (const auto& name : names) {
      if (name.find(want) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "trace_check: %s: required span '%s' not found\n", file.c_str(),
                   want.c_str());
      return 1;
    }
  }

  std::printf("trace_check: %s ok (%zu span name%s", file.c_str(), names.size(),
              names.size() == 1 ? "" : "s");
  if (events != nullptr) std::printf(", %zu events", events->array.size());
  std::printf(")\n");
  return 0;
}
