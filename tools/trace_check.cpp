// Validates telemetry JSON emitted by the gala CLI (and the bench JSON
// sidecars): the file must parse, have the expected top-level shape, and —
// optionally — contain required span names. Exits 0 on success, 1 on any
// failure, so CI can gate on trace validity.
//
// Usage:
//   trace_check <file.json> [--chrome|--metrics|--profile|--flight|--health|--mem]
//               [--require NAME]... [--ranks N] [--budget BYTES]
//
//   --chrome        expect Chrome-trace shape ({"traceEvents":[...]});
//                   default accepts either that or a metrics/summary
//                   document ({"spans":{...}} or {"spans":[...]}).
//                   Flow events ("s"/"f") must pair up by id.
//   --metrics       additionally validate the --metrics-out payload:
//                   counters non-negative, histogram buckets with strictly
//                   increasing lower bounds and positive counts, and
//                   p50 <= p95 <= p99.
//   --profile       validate a --profile-out payload: profile_schema,
//                   ceilings, a kernels array with non-negative counters,
//                   efficiencies in [0, 1], bank_conflict_factor >= 1, and
//                   monotone probe-histogram lengths.
//   --flight        validate a flight-recorder post-mortem (--flight-out or
//                   a supervisor dump): flight_schema, an events array whose
//                   entries carry seq/kind/tid/rank/a/b, and a strictly
//                   increasing seq clock (the cross-thread total order).
//   --health        validate a --health-out payload: health_schema, per-level
//                   diagnostics whose series arrays match the iteration
//                   count, churn in [0, 1], and a summary consistent with
//                   the per-level entries.
//   --mem           validate a --mem-out payload: mem_schema, per-subsystem
//                   byte accounting with live <= peak, totals with frag_pct
//                   in [0, 100], a consistent leak_check, and a residency
//                   timeline whose entry totals equal their subsystem sums.
//   --require NAME  fail unless a span name (or, with --profile, a kernel
//                   name; with --flight, an event kind; with --mem, a
//                   subsystem or tag name) containing NAME (substring) is
//                   present. Repeatable.
//   --ranks N       with --chrome, require spans on at least N distinct
//                   rank tracks (pid > 0); with --flight, events from at
//                   least N distinct ranks >= 0.
//   --budget BYTES  with --mem, require the modeled footprint to respect a
//                   governor budget: every residency-timeline epoch total and
//                   the peak_total_bytes gauge must be <= BYTES.
//
// --flight additionally checks the governor contract: governor-rung events
// carry the rung ordinal in 'a', and the ladder is sticky (escalate-only),
// so the ordinals must be monotonically non-decreasing across the dump.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/common/json.hpp"

namespace {

/// Collects the span names present in a telemetry document of any shape.
std::set<std::string> collect_names(const gala::JsonValue& doc) {
  std::set<std::string> names;
  if (const gala::JsonValue* events = doc.find("traceEvents")) {
    for (const auto& e : events->array) {
      if (const gala::JsonValue* n = e.find("name")) names.insert(n->string);
    }
  }
  if (const gala::JsonValue* spans = doc.find("spans")) {
    if (spans->is_array()) {  // flat JsonSink dump
      for (const auto& s : spans->array) {
        if (const gala::JsonValue* n = s.find("name")) names.insert(n->string);
      }
    } else if (spans->is_object()) {  // aggregated summary: "category/name" keys
      for (const auto& [key, value] : spans->object) names.insert(key);
    }
  }
  if (const gala::JsonValue* kernels = doc.find("kernels")) {
    for (const auto& k : kernels->array) {
      if (const gala::JsonValue* n = k.find("name")) names.insert(n->string);
    }
  }
  return names;
}

bool fail(const std::string& file, const std::string& message) {
  std::fprintf(stderr, "trace_check: %s: %s\n", file.c_str(), message.c_str());
  return false;
}

/// A member that, when present, must be a non-negative number.
bool check_nonneg(const gala::JsonValue& obj, const char* key, const std::string& file,
                  const std::string& where) {
  const gala::JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number < 0) {
    return fail(file, where + ": '" + key + "' is not a non-negative number");
  }
  return true;
}

/// --metrics: registry shape — counters/gauges numeric, histogram buckets
/// monotone in lo with positive counts, percentiles ordered.
bool check_metrics(const gala::JsonValue& doc, const std::string& file) {
  const gala::JsonValue* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return fail(file, "no counters object (not a --metrics-out payload?)");
  }
  for (const auto& [name, v] : counters->object) {
    if (!v.is_number() || v.number < 0) {
      return fail(file, "counter '" + name + "' is not a non-negative number");
    }
  }
  const gala::JsonValue* histograms = doc.find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return fail(file, "no histograms object");
  }
  for (const auto& [name, h] : histograms->object) {
    const std::string where = "histogram '" + name + "'";
    const gala::JsonValue* buckets = h.find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      return fail(file, where + ": no buckets array");
    }
    double prev_lo = -1;
    double bucket_total = 0;
    for (const auto& b : buckets->array) {
      const gala::JsonValue* lo = b.find("lo");
      const gala::JsonValue* count = b.find("count");
      if (lo == nullptr || count == nullptr || !lo->is_number() || !count->is_number()) {
        return fail(file, where + ": malformed bucket");
      }
      if (lo->number <= prev_lo) {
        return fail(file, where + ": bucket lower bounds are not strictly increasing");
      }
      if (count->number <= 0) {
        return fail(file, where + ": exported bucket with non-positive count");
      }
      prev_lo = lo->number;
      bucket_total += count->number;
    }
    const gala::JsonValue* count = h.find("count");
    if (count == nullptr || !count->is_number() || count->number != bucket_total) {
      return fail(file, where + ": count does not equal the bucket-count total");
    }
    const gala::JsonValue* p50 = h.find("p50");
    const gala::JsonValue* p95 = h.find("p95");
    const gala::JsonValue* p99 = h.find("p99");
    if (p50 == nullptr || p95 == nullptr || p99 == nullptr) {
      return fail(file, where + ": missing percentile summaries");
    }
    if (!(p50->number <= p95->number && p95->number <= p99->number)) {
      return fail(file, where + ": percentiles are not ordered (p50 <= p95 <= p99)");
    }
  }
  return true;
}

/// --profile: per-kernel profile shape and counter sanity.
bool check_profile(const gala::JsonValue& doc, const std::string& file) {
  const gala::JsonValue* schema = doc.find("profile_schema");
  if (schema == nullptr || !schema->is_number()) {
    return fail(file, "no profile_schema (not a --profile-out payload?)");
  }
  const gala::JsonValue* ceilings = doc.find("ceilings");
  if (ceilings == nullptr || !ceilings->is_object()) return fail(file, "no ceilings object");
  if (!check_nonneg(*ceilings, "dram_gbps", file, "ceilings") ||
      !check_nonneg(*ceilings, "peak_gops", file, "ceilings")) {
    return false;
  }
  const gala::JsonValue* kernels = doc.find("kernels");
  if (kernels == nullptr || !kernels->is_array()) return fail(file, "no kernels array");
  for (const auto& k : kernels->array) {
    const gala::JsonValue* name = k.find("name");
    if (name == nullptr || !name->is_string()) return fail(file, "kernel without a name");
    const std::string where = "kernel '" + name->string + "'";
    for (const char* key : {"launches", "blocks", "modeled_cycles", "modeled_ms"}) {
      const gala::JsonValue* v = k.find(key);
      if (v == nullptr) return fail(file, where + ": missing '" + key + "'");
      if (!v->is_number() || v->number < 0) {
        return fail(file, where + ": '" + key + "' is not a non-negative number");
      }
    }
    const gala::JsonValue* counters = k.find("counters");
    if (counters == nullptr || !counters->is_object()) {
      return fail(file, where + ": no counters object");
    }
    for (const auto& [cname, v] : counters->object) {
      if (!v.is_number() || v.number < 0) {
        return fail(file, where + ": counter '" + cname + "' is not a non-negative number");
      }
    }
    for (const char* key : {"coalescing_efficiency", "divergence_efficiency"}) {
      const gala::JsonValue* v = k.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0 || v->number > 1.0) {
        return fail(file, where + ": '" + key + "' is not in [0, 1]");
      }
    }
    const gala::JsonValue* bcf = k.find("bank_conflict_factor");
    if (bcf == nullptr || !bcf->is_number() || bcf->number < 1.0) {
      return fail(file, where + ": bank_conflict_factor below 1");
    }
    if (const gala::JsonValue* ht = k.find("hashtable")) {
      const gala::JsonValue* hist = ht->find("probe_hist");
      if (hist == nullptr || !hist->is_array()) {
        return fail(file, where + ": hashtable without probe_hist");
      }
      double prev_len = 0;
      for (const auto& b : hist->array) {
        const gala::JsonValue* len = b.find("len");
        const gala::JsonValue* count = b.find("count");
        if (len == nullptr || count == nullptr || !len->is_number() || !count->is_number()) {
          return fail(file, where + ": malformed probe_hist bucket");
        }
        if (len->number <= prev_len) {
          return fail(file, where + ": probe_hist lengths are not strictly increasing");
        }
        if (count->number <= 0) {
          return fail(file, where + ": probe_hist bucket with non-positive count");
        }
        prev_len = len->number;
      }
    }
    const gala::JsonValue* roofline = k.find("roofline");
    if (roofline == nullptr || !roofline->is_object()) {
      return fail(file, where + ": no roofline object");
    }
    if (!check_nonneg(*roofline, "dram_bytes", file, where) ||
        !check_nonneg(*roofline, "arithmetic_intensity", file, where) ||
        !check_nonneg(*roofline, "achieved_gops", file, where)) {
      return false;
    }
  }
  return true;
}

/// --flight: post-mortem dump shape — schema, event fields, and the global
/// monotonic event clock.
bool check_flight(const gala::JsonValue& doc, const std::string& file, int want_ranks) {
  const gala::JsonValue* schema = doc.find("flight_schema");
  if (schema == nullptr || !schema->is_number()) {
    return fail(file, "no flight_schema (not a flight-recorder dump?)");
  }
  const gala::JsonValue* reason = doc.find("reason");
  if (reason == nullptr || !reason->is_string()) return fail(file, "no reason string");
  if (!check_nonneg(doc, "depth", file, "dump") || !check_nonneg(doc, "recorded", file, "dump") ||
      !check_nonneg(doc, "dropped", file, "dump")) {
    return false;
  }
  const gala::JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) return fail(file, "no events array");
  double prev_seq = -1;
  double prev_rung = -1;
  std::set<int> ranks;
  for (const auto& e : events->array) {
    for (const char* key : {"seq", "tid", "a", "b"}) {
      const gala::JsonValue* v = e.find(key);
      if (v == nullptr || !v->is_number()) {
        return fail(file, std::string("event missing numeric '") + key + "'");
      }
    }
    const gala::JsonValue* kind = e.find("kind");
    if (kind == nullptr || !kind->is_string() || kind->string.empty()) {
      return fail(file, "event without a kind");
    }
    const gala::JsonValue* rank = e.find("rank");
    if (rank == nullptr || !rank->is_number()) return fail(file, "event without a rank");
    if (rank->number >= 0) ranks.insert(static_cast<int>(rank->number));
    const double seq = e.at("seq").number;
    if (seq <= prev_seq) {
      return fail(file, "event clock is not strictly increasing (seq " +
                            std::to_string(seq) + " after " + std::to_string(prev_seq) + ")");
    }
    prev_seq = seq;
    // The degradation ladder is escalate-only, so rung ordinals (payload 'a')
    // must never decrease within one dump.
    if (kind->string == "governor-rung") {
      const double rung = e.at("a").number;
      if (rung < prev_rung) {
        return fail(file, "governor-rung de-escalated (rung " +
                              std::to_string(static_cast<int>(rung)) + " after " +
                              std::to_string(static_cast<int>(prev_rung)) + ")");
      }
      prev_rung = rung;
    }
  }
  if (want_ranks > 0 && static_cast<int>(ranks.size()) < want_ranks) {
    return fail(file, "expected events from >= " + std::to_string(want_ranks) +
                          " ranks, saw " + std::to_string(ranks.size()));
  }
  return true;
}

/// Flight dumps --require against event kinds rather than span names.
std::set<std::string> collect_flight_kinds(const gala::JsonValue& doc) {
  std::set<std::string> kinds;
  if (const gala::JsonValue* events = doc.find("events")) {
    for (const auto& e : events->array) {
      if (const gala::JsonValue* k = e.find("kind")) kinds.insert(k->string);
    }
  }
  return kinds;
}

/// --health: health_schema-1 report shape — config, per-level diagnostics
/// with series arrays matching the iteration count, and a summary whose
/// totals agree with the levels.
bool check_health(const gala::JsonValue& doc, const std::string& file) {
  const gala::JsonValue* schema = doc.find("health_schema");
  if (schema == nullptr || !schema->is_number()) {
    return fail(file, "no health_schema (not a --health-out payload?)");
  }
  const gala::JsonValue* config = doc.find("config");
  if (config == nullptr || !config->is_object()) return fail(file, "no config object");
  for (const char* key : {"stall_epsilon", "stall_window"}) {
    const gala::JsonValue* v = config->find(key);
    if (v == nullptr || !v->is_number() || v->number < 0) {
      return fail(file, std::string("config: '") + key + "' is not a non-negative number");
    }
  }
  const gala::JsonValue* levels = doc.find("levels");
  if (levels == nullptr || !levels->is_array()) return fail(file, "no levels array");
  double total_iterations = 0;
  for (const auto& lv : levels->array) {
    const gala::JsonValue* level = lv.find("level");
    if (level == nullptr || !level->is_number()) return fail(file, "level without an index");
    const std::string where = "level " + std::to_string(static_cast<int>(level->number));
    const gala::JsonValue* iters = lv.find("iterations");
    if (iters == nullptr || !iters->is_number() || iters->number < 0) {
      return fail(file, where + ": 'iterations' is not a non-negative number");
    }
    total_iterations += iters->number;
    for (const char* key : {"vertices", "stall_iterations", "oscillating_vertices",
                            "oscillation_moves", "frontier_half_life"}) {
      if (!check_nonneg(lv, key, file, where)) return false;
    }
    const gala::JsonValue* stalled = lv.find("stalled");
    if (stalled == nullptr || stalled->type != gala::JsonValue::Type::Bool) {
      return fail(file, where + ": 'stalled' is not a boolean");
    }
    for (const char* key : {"churn_peak", "churn_mean"}) {
      const gala::JsonValue* v = lv.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0 || v->number > 1.0) {
        return fail(file, where + ": '" + key + "' is not in [0, 1]");
      }
    }
    const gala::JsonValue* series = lv.find("series");
    if (series == nullptr || !series->is_object()) {
      return fail(file, where + ": no series object");
    }
    for (const char* key : {"modularity", "delta_q", "active", "moved", "flip_flops",
                            "ht_mean_probe_length"}) {
      const gala::JsonValue* arr = series->find(key);
      if (arr == nullptr || !arr->is_array()) {
        return fail(file, where + ": series '" + key + "' is not an array");
      }
      if (static_cast<double>(arr->array.size()) != iters->number) {
        return fail(file, where + ": series '" + key + "' has " +
                              std::to_string(arr->array.size()) + " entries for " +
                              std::to_string(static_cast<int>(iters->number)) + " iterations");
      }
    }
  }
  const gala::JsonValue* summary = doc.find("summary");
  if (summary == nullptr || !summary->is_object()) return fail(file, "no summary object");
  const gala::JsonValue* sum_levels = summary->find("levels");
  if (sum_levels == nullptr || !sum_levels->is_number() ||
      sum_levels->number != static_cast<double>(levels->array.size())) {
    return fail(file, "summary.levels does not equal the number of level entries");
  }
  const gala::JsonValue* sum_iters = summary->find("total_iterations");
  if (sum_iters == nullptr || !sum_iters->is_number() || sum_iters->number != total_iterations) {
    return fail(file, "summary.total_iterations does not equal the per-level sum");
  }
  return true;
}

/// --mem: mem_schema-1 report shape — per-subsystem gauges with live <= peak,
/// consistent totals, a leak_check section, and a well-formed timeline. With
/// `budget` > 0 the modeled footprint must respect it at every epoch.
bool check_mem(const gala::JsonValue& doc, const std::string& file, std::uint64_t budget) {
  const gala::JsonValue* schema = doc.find("mem_schema");
  if (schema == nullptr || !schema->is_number()) {
    return fail(file, "no mem_schema (not a --mem-out payload?)");
  }
  const gala::JsonValue* subsystems = doc.find("subsystems");
  if (subsystems == nullptr || !subsystems->is_array()) return fail(file, "no subsystems array");
  for (const auto& s : subsystems->array) {
    const gala::JsonValue* name = s.find("name");
    if (name == nullptr || !name->is_string()) return fail(file, "subsystem without a name");
    const std::string where = "subsystem '" + name->string + "'";
    for (const char* key : {"allocs", "bytes_total", "live", "peak", "waste", "resident",
                            "resident_peak"}) {
      const gala::JsonValue* v = s.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0) {
        return fail(file, where + ": '" + key + "' is not a non-negative number");
      }
    }
    if (s.at("live").number > s.at("peak").number) {
      return fail(file, where + ": live exceeds peak");
    }
    if (s.at("resident").number > s.at("resident_peak").number) {
      return fail(file, where + ": resident exceeds resident_peak");
    }
    const gala::JsonValue* tags = s.find("tags");
    if (tags == nullptr || !tags->is_array() || tags->array.empty()) {
      return fail(file, where + ": no tags array");
    }
    for (const auto& t : tags->array) {
      const gala::JsonValue* tname = t.find("name");
      if (tname == nullptr || !tname->is_string()) {
        return fail(file, where + ": tag without a name");
      }
      for (const char* key : {"allocs", "frees", "live", "peak", "retained"}) {
        if (!check_nonneg(t, key, file, "tag '" + tname->string + "'")) return false;
      }
    }
  }
  const gala::JsonValue* totals = doc.find("totals");
  if (totals == nullptr || !totals->is_object()) return fail(file, "no totals object");
  for (const char* key : {"peak_ws_bytes", "peak_total_bytes", "live_bytes"}) {
    const gala::JsonValue* v = totals->find(key);
    if (v == nullptr || !v->is_number() || v->number < 0) {
      return fail(file, std::string("totals: '") + key + "' is not a non-negative number");
    }
  }
  if (totals->at("peak_ws_bytes").number > totals->at("peak_total_bytes").number) {
    return fail(file, "totals: peak_ws_bytes exceeds peak_total_bytes");
  }
  const gala::JsonValue* frag = totals->find("frag_pct");
  if (frag == nullptr || !frag->is_number() || frag->number < 0 || frag->number > 100.0) {
    return fail(file, "totals: frag_pct is not in [0, 100]");
  }
  if (budget > 0 && totals->at("peak_total_bytes").number > static_cast<double>(budget)) {
    return fail(file, "totals: peak_total_bytes " +
                          std::to_string(static_cast<std::uint64_t>(
                              totals->at("peak_total_bytes").number)) +
                          " exceeds the budget " + std::to_string(budget));
  }
  const gala::JsonValue* leak = doc.find("leak_check");
  if (leak == nullptr || !leak->is_object()) return fail(file, "no leak_check object");
  const gala::JsonValue* clean = leak->find("clean");
  const gala::JsonValue* leaked = leak->find("leaked_tags");
  if (clean == nullptr || clean->type != gala::JsonValue::Type::Bool || leaked == nullptr ||
      !leaked->is_array()) {
    return fail(file, "leak_check: missing clean flag or leaked_tags array");
  }
  if (clean->boolean != leaked->array.empty()) {
    return fail(file, "leak_check: clean flag contradicts leaked_tags");
  }
  const gala::JsonValue* timeline = doc.find("timeline");
  if (timeline == nullptr || !timeline->is_array()) return fail(file, "no timeline array");
  for (const auto& e : timeline->array) {
    const gala::JsonValue* kind = e.find("kind");
    if (kind == nullptr || !kind->is_string() ||
        (kind->string != "iteration" && kind->string != "level")) {
      return fail(file, "timeline entry with kind not in {iteration, level}");
    }
    for (const char* key : {"index", "total"}) {
      const gala::JsonValue* v = e.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0) {
        return fail(file, std::string("timeline: '") + key + "' is not a non-negative number");
      }
    }
    const gala::JsonValue* per = e.find("subsystems");
    if (per == nullptr || !per->is_object()) {
      return fail(file, "timeline entry without a subsystems object");
    }
    double sum = 0;
    for (const auto& [sname, bytes] : per->object) {
      if (!bytes.is_number() || bytes.number < 0) {
        return fail(file, "timeline subsystem '" + sname + "' is not a non-negative number");
      }
      sum += bytes.number;
    }
    if (sum != e.at("total").number) {
      return fail(file, "timeline entry total does not equal the subsystem sum");
    }
    if (budget > 0 && e.at("total").number > static_cast<double>(budget)) {
      return fail(file, "timeline " + e.at("kind").string + " " +
                            std::to_string(static_cast<int>(e.at("index").number)) + ": total " +
                            std::to_string(static_cast<std::uint64_t>(e.at("total").number)) +
                            " exceeds the budget " + std::to_string(budget));
    }
  }
  return true;
}

/// Mem reports --require against subsystem and tag names.
std::set<std::string> collect_mem_names(const gala::JsonValue& doc) {
  std::set<std::string> names;
  if (const gala::JsonValue* subsystems = doc.find("subsystems")) {
    for (const auto& s : subsystems->array) {
      if (const gala::JsonValue* n = s.find("name")) names.insert(n->string);
      if (const gala::JsonValue* tags = s.find("tags")) {
        for (const auto& t : tags->array) {
          if (const gala::JsonValue* n = t.find("name")) names.insert(n->string);
        }
      }
    }
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  bool chrome = false;
  bool metrics = false;
  bool profile = false;
  bool flight = false;
  bool health = false;
  bool mem = false;
  int ranks = 0;
  std::uint64_t budget = 0;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chrome") {
      chrome = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--flight") {
      flight = true;
    } else if (arg == "--health") {
      health = true;
    } else if (arg == "--mem") {
      mem = true;
    } else if (arg == "--ranks") {
      if (++i >= argc) {
        std::fprintf(stderr, "trace_check: --ranks needs a value\n");
        return 1;
      }
      ranks = std::atoi(argv[i]);
      if (ranks <= 0) {
        std::fprintf(stderr, "trace_check: --ranks needs a positive integer\n");
        return 1;
      }
    } else if (arg == "--budget") {
      if (++i >= argc) {
        std::fprintf(stderr, "trace_check: --budget needs a value\n");
        return 1;
      }
      char* end = nullptr;
      budget = std::strtoull(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || budget == 0) {
        std::fprintf(stderr, "trace_check: --budget needs a positive byte count, got '%s'\n",
                     argv[i]);
        return 1;
      }
    } else if (arg == "--require") {
      if (++i >= argc) {
        std::fprintf(stderr, "trace_check: --require needs a value\n");
        return 1;
      }
      required.emplace_back(argv[i]);
    } else if (file.empty()) {
      file = arg;
    } else {
      std::fprintf(stderr, "trace_check: unexpected argument '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (file.empty() || (chrome + metrics + profile + flight + health + mem) > 1) {
    std::fprintf(stderr,
                 "usage: trace_check <file.json> "
                 "[--chrome|--metrics|--profile|--flight|--health|--mem] "
                 "[--require NAME]... [--ranks N] [--budget BYTES]\n");
    return 1;
  }

  std::ifstream in(file);
  if (!in.is_open()) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", file.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  gala::JsonValue doc;
  try {
    doc = gala::parse_json(ss.str());
  } catch (const gala::Error& e) {
    std::fprintf(stderr, "trace_check: %s: invalid JSON: %s\n", file.c_str(), e.what());
    return 1;
  }
  if (!doc.is_object()) {
    std::fprintf(stderr, "trace_check: %s: top level is not an object\n", file.c_str());
    return 1;
  }

  const gala::JsonValue* events = doc.find("traceEvents");
  if (chrome) {
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "trace_check: %s: no traceEvents array\n", file.c_str());
      return 1;
    }
    // Flow arrows must pair up: each posted edge ("s") needs a consumer ("f")
    // with the same id, and vice versa — a dangling side means the merge lost
    // the other rank's half of the hand-off.
    std::set<std::string> flow_starts;
    std::set<std::string> flow_finishes;
    std::set<double> rank_pids;
    for (const auto& e : events->array) {
      if (e.find("name") == nullptr || e.find("ph") == nullptr || e.find("ts") == nullptr) {
        std::fprintf(stderr, "trace_check: %s: malformed trace event\n", file.c_str());
        return 1;
      }
      const std::string ph = e.at("ph").string;
      if (ph == "s" || ph == "f") {
        const gala::JsonValue* id = e.find("id");
        if (id == nullptr) {
          std::fprintf(stderr, "trace_check: %s: flow event without an id\n", file.c_str());
          return 1;
        }
        const std::string key = id->is_string() ? id->string : std::to_string(id->number);
        (ph == "s" ? flow_starts : flow_finishes).insert(key);
      }
      if (const gala::JsonValue* pid = e.find("pid")) {
        if (pid->is_number() && pid->number > 0 && e.at("ph").string != "M") {
          rank_pids.insert(pid->number);
        }
      }
    }
    for (const auto& id : flow_starts) {
      if (flow_finishes.count(id) == 0) {
        std::fprintf(stderr, "trace_check: %s: flow id '%s' posted but never completed\n",
                     file.c_str(), id.c_str());
        return 1;
      }
    }
    for (const auto& id : flow_finishes) {
      if (flow_starts.count(id) == 0) {
        std::fprintf(stderr, "trace_check: %s: flow id '%s' completed but never posted\n",
                     file.c_str(), id.c_str());
        return 1;
      }
    }
    if (ranks > 0 && static_cast<int>(rank_pids.size()) < ranks) {
      std::fprintf(stderr, "trace_check: %s: expected spans on >= %d rank tracks, saw %zu\n",
                   file.c_str(), ranks, rank_pids.size());
      return 1;
    }
  } else if (flight) {
    if (!check_flight(doc, file, ranks)) return 1;
  } else if (health) {
    if (!check_health(doc, file)) return 1;
  } else if (mem) {
    if (!check_mem(doc, file, budget)) return 1;
  } else if (metrics) {
    if (!check_metrics(doc, file)) return 1;
  } else if (profile) {
    if (!check_profile(doc, file)) return 1;
  } else if (events == nullptr && doc.find("spans") == nullptr) {
    std::fprintf(stderr, "trace_check: %s: neither traceEvents nor spans present\n",
                 file.c_str());
    return 1;
  }

  const std::set<std::string> names = flight ? collect_flight_kinds(doc)
                                     : mem   ? collect_mem_names(doc)
                                             : collect_names(doc);
  const char* noun = flight ? "event kind" : mem ? "subsystem" : "span";
  for (const auto& want : required) {
    bool found = false;
    for (const auto& name : names) {
      if (name.find(want) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "trace_check: %s: required %s '%s' not found\n", file.c_str(), noun,
                   want.c_str());
      return 1;
    }
  }

  std::printf("trace_check: %s ok (%zu %s name%s", file.c_str(), names.size(), noun,
              names.size() == 1 ? "" : "s");
  if (events != nullptr) std::printf(", %zu events", events->array.size());
  if (flight) {
    if (const gala::JsonValue* fe = doc.find("events")) std::printf(", %zu events", fe->array.size());
  }
  std::printf(")\n");
  return 0;
}
